"""The shared multi-core numeric execution engine.

Section 2's headline claim is that computation throughput scales with the
core count ``p`` while external bandwidth stays constant. The analytic
side of that claim lives in the schedule walk and the roofline; this
module is the *wall-clock* side: it executes the engines' block schedules
with real threads, using the paper's per-core M-decomposition.

Execution model
---------------

Both engines hand the executor an ordered sequence of **strip groups**:

* For CAKE, one group per CB block of the K-first schedule. Within the
  group, each strip is one core's ``mc``-row slab of packed A multiplied
  against the block's B panel, accumulating into that core's *disjoint*
  C row panel — lock-free by construction, exactly the CB shaping of
  Section 4.2.
* For GOTO, one group per ``(nc, kc)`` slice of the Figure 5 loop nest;
  strips are the ``mc x kc`` A sub-blocks of that slice (all M waves),
  again with disjoint C row panels.

Groups are barriers: group ``g+1`` starts only after every strip of group
``g`` completed. That ordering is what makes the parallel product
**bit-identical** to the serial walk — each C element sees the same
``+=`` sequence of identically-shaped matmuls in the same order, only
the (independent) strips within one group run concurrently. NumPy's
matmul releases the GIL, so a ``ThreadPoolExecutor`` scales on real
cores with zero pickling or shared-memory setup.

*How* a strip (or a whole group) multiplies is delegated to a pluggable
:class:`~repro.gemm.backends.Backend`. The default is the per-strip
NumPy oracle; ``grouped`` backends (``blas-group``, ``torch``) instead
execute each group as one whole-panel library call on the orchestrator
thread — the barrier structure, the accumulation order per C element,
and the traffic accounting are identical either way. For any *fixed*
backend the result is bit-identical across worker counts; across
*backends* results agree within each backend's declared agreement band
(bit-exact for backends declaring determinism).

Traffic/timing accounting never runs here — counters come from the
engines' deterministic schedule walk, so ``GemmRun`` rows are identical
whether numerics ran serial or parallel (asserted in tests).

Phase timers
------------

:class:`PhaseTimers` captures per-phase wall-clock so future PRs can
profile the engine:

* ``pack`` — building the packed operands (orchestrator wall time);
* ``compute`` — per-strip kernel time, **summed across workers** (with
  ``w`` workers on ``w`` idle cores this exceeds the elapsed wall time
  by up to ``w``; the ratio is the achieved parallelism);
* ``reduce`` — orchestrator time blocked on group barriers waiting for
  workers to finish (load imbalance + GIL contention indicator; zero on
  the inline ``workers=1`` path);
* ``verify`` / ``recover`` — ABFT checksum validation and recovery-ladder
  time when the run executes verified (:mod:`repro.gemm.verify`); zero
  otherwise.

Verified execution
------------------

When the engine passes a :class:`~repro.gemm.verify.GroupVerifier`, each
group asks the verifier for a restore point before its strips are
submitted (usually free: a fresh or fully-verified panel is rebuilt by
replaying its history, so only unknown mid-accumulation panels are
copied) and the checksum identities are checked **at the group
barrier**, on the orchestrator thread. Recovery (strip recompute,
oracle fallback) therefore
completes before the next group starts — the ``+=`` order every C element
sees is unchanged, which is what keeps a healed run bit-identical to a
clean one for any worker count. Fault injection
(:class:`~repro.runtime.faults.NumericFaultInjector`) hooks the same
seam: a strip's output panel is corrupted right after its kernel call,
keyed deterministically by ``(group, strip)``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, NamedTuple, Sequence

import numpy as np

from repro.errors import BackendCapabilityError
from repro.gemm.backends.base import (
    Backend,
    execute_group,
    group_eligible,
)
from repro.gemm.backends.numpy_backend import NumpyBackend
from repro.gemm.microkernel import MicroKernel
from repro.util import ceil_div, require_positive, split_length

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.gemm.backends.registry import BackendSpec
    from repro.gemm.verify import GroupVerifier
    from repro.runtime.faults import NumericFaultInjector


class StripTask(NamedTuple):
    """One core's slab of work: ``c += a @ b`` on disjoint C rows."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray


class StripGroup(NamedTuple):
    """One barrier's worth of strips, plus its ABFT identity material.

    Engines that run unverified may keep handing the executor plain
    sequences of :class:`StripTask`; the executor wraps them. ``index``
    is the group's position in the schedule (the fault-injection key),
    ``coord``/``label`` identify the block in error reports, and the
    checksum vectors are the pack-time ``colsum(A_group)`` (length ``k``)
    and ``rowsum(B_group)`` (length ``k``) driving the column/row
    identities. ``checksum_a is None`` means the group runs unverified.
    ``panel``, when an engine can provide it, is the single C view whose
    rows are exactly the tasks' C strips stacked in task order — it lets
    the verifier snapshot and reduce the whole panel in one numpy call
    each instead of stacking the strips itself. ``operand_a`` plays the
    same role for the A side: one array whose rows are the tasks' A
    strips in task order. ``mag_a``/``mag_b`` are the group operands'
    pack-time absolute-value sums ``(|X|.sum(axis=0), |X|.sum(axis=1))``
    — with them the verifier's tolerance band costs O(m + n) vector
    arithmetic per group instead of a fresh ``|A|``/``|B|`` scan.
    """

    tasks: Sequence[StripTask]
    index: int = 0
    coord: tuple = ()
    label: str = "block"
    checksum_a: np.ndarray | None = None
    checksum_b: np.ndarray | None = None
    panel: np.ndarray | None = None
    #: True when this group is the first update of its C panel and the
    #: panel is still all-zero — the verifier then skips the snapshot
    #: copy (restore is a zero fill) and starts from zero "before" sums.
    fresh_panel: bool = False
    operand_a: np.ndarray | None = None
    mag_a: tuple[np.ndarray, np.ndarray] | None = None
    mag_b: tuple[np.ndarray, np.ndarray] | None = None


@dataclass(slots=True)
class PhaseTimers:
    """Wall-clock pack/compute/reduce/verify/recover accounting."""

    pack_seconds: float = 0.0
    compute_seconds: float = 0.0
    reduce_seconds: float = 0.0
    verify_seconds: float = 0.0
    recover_seconds: float = 0.0
    #: Workers the run was executed with (1 = inline serial path).
    workers: int = 1

    def as_dict(self) -> dict[str, float]:
        """The breakdown in the shape ``GemmRun.phase_seconds`` carries."""
        return {
            "pack": self.pack_seconds,
            "compute": self.compute_seconds,
            "reduce": self.reduce_seconds,
            "verify": self.verify_seconds,
            "recover": self.recover_seconds,
        }


def core_strips(rows: int, cores: int) -> list[int]:
    """Split a block's M extent evenly over the cores.

    Returns at most ``cores`` strip heights differing by at most the
    rounding chunk; fewer strips than cores means idle cores (only when
    ``rows < cores``). Shared by the CAKE engine's schedule walk and the
    process-sharded executor, which must carve identical strips for the
    bit-identity contract to hold.
    """
    return split_length(rows, ceil_div(rows, cores))


def resolve_workers(workers: int | None) -> int:
    """Normalize an engine's ``workers`` parameter (``None`` -> serial)."""
    if workers is None:
        return 1
    require_positive("workers", workers)
    return workers


def check_multiply_operands(
    a: np.ndarray,
    b: np.ndarray,
    backend: "Backend | BackendSpec | None" = None,
) -> np.dtype:
    """Validate operand dtypes/shapes for numeric execution.

    Returns the accumulation dtype (``np.result_type`` of the operands:
    float32 inputs stay float32, mixed precision widens). Integer and
    boolean operands are rejected outright — blocked accumulation of
    fixed-width integers silently wraps on overflow, which no GEMM user
    wants from a library that otherwise reproduces BLAS semantics.

    Dtype rejections raise the structured
    :class:`~repro.errors.BackendCapabilityError` (a ``TypeError``
    subclass) naming the backend that refused — both for the universal
    integer/boolean rejection and for dtypes outside the selected
    ``backend``'s declared capability envelope (e.g. complex operands on
    the torch backend), so capability failures never surface as a
    generic ``TypeError`` deep in a kernel.

    Layout is deliberately *not* validated: F-ordered, transposed and
    non-contiguous operands are first-class. The packing pass copies
    them block-contiguous in a single strided pass, so no caller ever
    needs (or pays for) an ``np.ascontiguousarray`` staging copy.
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("operands must be 2-D arrays")
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
        )
    out = np.result_type(a, b)
    name = backend.name if backend is not None else "numpy"
    if not (
        np.issubdtype(out, np.floating) or np.issubdtype(out, np.complexfloating)
    ):
        raise BackendCapabilityError(
            name,
            f"refusing to multiply {a.dtype} x {b.dtype} operands: blocked "
            f"accumulation in {out} integer arithmetic wraps silently on "
            f"overflow; cast the operands to a floating dtype first "
            f"(e.g. a.astype(np.float64))",
            dtype=out,
        )
    if backend is not None and not backend.supports_dtype(out):
        raise BackendCapabilityError(
            name,
            f"does not support {out} accumulation "
            f"(operands {a.dtype} x {b.dtype}); select a backend whose "
            f"capabilities cover this dtype (the 'numpy' oracle always "
            f"does) or cast the operands",
            dtype=out,
        )
    return out


def _timed_strip(
    backend: Backend,
    task: StripTask,
    group_index: int = 0,
    strip_index: int = 0,
    faults: "NumericFaultInjector | None" = None,
) -> float:
    """Execute one strip through the backend, returning its wall time.

    Injected corruption lands right after the numeric update — the seam
    a soft error or bad thread would hit — keyed ``(group, strip)`` so
    the same strips corrupt for any worker count.
    """
    start = time.perf_counter()
    backend.matmul_strip(task.a, task.b, task.c)
    if faults is not None:
        faults.corrupt(group_index, strip_index, task.c)
    return time.perf_counter() - start


def _timed_group(
    backend: Backend,
    group: StripGroup,
    faults: "NumericFaultInjector | None",
) -> float:
    """Execute one whole strip group inline, returning its wall time."""
    start = time.perf_counter()
    execute_group(backend, group, faults)
    return time.perf_counter() - start


def _as_group(group: "StripGroup | Sequence[StripTask]", index: int) -> StripGroup:
    if isinstance(group, StripGroup):
        return group
    return StripGroup(tasks=group, index=index)


def run_strip_groups(
    groups: "Iterable[StripGroup | Sequence[StripTask]]",
    kernel: MicroKernel,
    *,
    workers: int = 1,
    exact_tiles: bool = False,
    timers: PhaseTimers | None = None,
    verifier: "GroupVerifier | None" = None,
    faults: "NumericFaultInjector | None" = None,
    backend: Backend | None = None,
) -> PhaseTimers:
    """Execute an ordered sequence of strip groups, barrier per group.

    Numeric work flows through the ``backend``
    (:mod:`repro.gemm.backends`); ``None`` means the per-strip NumPy
    oracle built from ``kernel``/``exact_tiles`` — the pre-backend
    behaviour, bit for bit. ``workers=1`` runs every strip inline (no
    pool, no thread hop); ``workers>1`` fans each group's strips over a
    thread pool. Both paths issue identical backend calls in a
    per-C-row identical order, so for a fixed backend the numeric
    result is bit-for-bit the same for any worker count.

    ``grouped`` backends short-circuit the fan-out: a group carrying
    its group-contiguous views executes as **one** backend call on this
    (the orchestrator) thread — one GIL-released library call per
    barrier, which is the whole point of such backends — and worker
    count becomes trivially irrelevant to the bits.

    Groups may be plain sequences of :class:`StripTask` (unverified runs)
    or :class:`StripGroup` records carrying checksum material. With a
    ``verifier``, each group gets a restore point before dispatch and is
    checked —
    recovering if needed — at its barrier, on this (the orchestrator)
    thread; ``faults`` deterministically corrupts strip outputs to drive
    the recovery ladder.

    The pool is created per call, which keeps one engine object safe to
    run from multiple threads concurrently (no shared mutable executor
    state; the buffer pool is lock-guarded separately).
    """
    timers = timers if timers is not None else PhaseTimers()
    timers.workers = max(timers.workers, workers)
    if backend is None:
        backend = NumpyBackend(kernel, exact_tiles=exact_tiles)
    if workers <= 1 or backend.capabilities.grouped:
        pool_ctx = None
    else:
        pool_ctx = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cake-gemm"
        )
    try:
        for index, raw in enumerate(groups):
            group = _as_group(raw, index)
            snaps = (
                verifier.snapshot(group, backend=backend)
                if verifier is not None
                else None
            )
            if pool_ctx is None or group_eligible(backend, group):
                timers.compute_seconds += _timed_group(backend, group, faults)
            else:
                futures = [
                    pool_ctx.submit(
                        _timed_strip, backend, task, group.index, strip, faults
                    )
                    for strip, task in enumerate(group.tasks)
                ]
                barrier_start = time.perf_counter()
                # Propagate worker exceptions eagerly; sum kernel seconds.
                timers.compute_seconds += sum(f.result() for f in futures)
                timers.reduce_seconds += time.perf_counter() - barrier_start
            if verifier is not None:
                # Inside the barrier: the next group does not start until
                # this one verified (and healed), so recovery is ordered
                # identically for any worker count.
                verifier.check_and_recover(
                    group, snaps, kernel, exact_tiles, faults,
                    backend=backend,
                )
    finally:
        if pool_ctx is not None:
            pool_ctx.shutdown(wait=True)
    return timers
