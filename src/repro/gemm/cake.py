"""The CAKE GEMM engine.

Executes ``C = A x B`` exactly as Sections 2-4 prescribe:

1. Derive a :class:`~repro.gemm.plan.CakePlan` (alpha from DRAM bandwidth,
   ``mc = kc`` from the LRU rule, block ``p*mc x kc x alpha*p*mc``).
2. Pack A into per-block contiguous sub-matrices and B into
   ``kc x n_block`` panels (Section 5.2.1).
3. Walk the K-first schedule of Algorithm 2. Within each block, the M
   extent is split evenly across the ``p`` cores (the CB shaping puts one
   A sub-block per core); each core sweeps the block's N extent,
   accumulating partial C **in place** in local memory. A block's partial
   C surface is written to DRAM only when its reduction run completes —
   CAKE moves no partial results externally, ever (``ext_c_spill`` and
   ``ext_c_read`` stay zero by construction, asserted in tests).
4. Tally traffic and price each block with the roofline
   (:func:`repro.perfmodel.roofline.block_time`).

Numerics execute through the shared strip-group executor
(:mod:`repro.gemm.parallel`): with ``workers > 1`` the per-core strips
of each block run on real threads, bit-identical to the serial walk.
Counters always come from the deterministic schedule walk above, never
from the threads.

Because blocks split M evenly among cores *per block*, CAKE keeps all
cores busy even when ``M`` is far smaller than ``p * mc`` — one of the two
mechanisms (with partial-C elimination) behind its small-matrix advantage
in Figures 8 and 9a.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigurationError
from repro.gemm.backends import Backend, resolve_backend
from repro.gemm.counters import TrafficCounters
from repro.gemm.parallel import (
    PhaseTimers,
    StripGroup,
    StripTask,
    check_multiply_operands,
    core_strips,
    resolve_workers,
    run_strip_groups,
)
from repro.gemm.plan import CakePlan, PlanOverride
from repro.gemm.result import GemmRun, degenerate_run
from repro.gemm.verify import (
    GroupVerifier,
    VerifyConfig,
    VerifyReport,
    resolve_verify,
)
from repro.gemm.sharded import (
    ShardConfig,
    plan_shards,
    resolve_shards,
    run_sharded,
)
from repro.machines.spec import MachineSpec
from repro.packing.cost import packing_cost
from repro.packing.pack import pack_a_cake, pack_b_cake
from repro.packing.pool import BufferPool, SharedBufferPool
from repro.perfmodel.roofline import ZERO_TIME, block_time
from repro.schedule.reuse import SurfaceResidency
from repro.schedule.space import BlockCoord, ComputationSpace
#: Backward-compatible alias: the strip partitioner now lives in
#: :mod:`repro.gemm.parallel` so the sharded executor shares it.
_core_strips = core_strips


class CakeGemm:
    """CAKE matrix-multiplication engine for one machine.

    Parameters
    ----------
    machine:
        Platform model the run is priced on.
    cores:
        Cores to use (default: all of them).
    alpha:
        CB aspect factor; ``None`` derives it from DRAM bandwidth.
    exact_tiles:
        Execute every ``mr x nr`` register tile explicitly instead of one
        vectorised panel product per core strip (slow; for validation).
    exact_walk:
        Run :meth:`analyze` through the scalar per-block walk instead of
        the vectorized batch analyzer. The two are bit-for-bit identical
        (asserted by tests); the flag exists as the oracle for those
        equivalence tests and for debugging the walk block by block.
        :meth:`multiply` always walks scalar — it must execute tiles.
    workers:
        Host threads for numeric execution (``None`` or 1: inline
        serial). Within each CB block the per-core strips run
        concurrently on disjoint C row panels; the product is
        bit-identical to the serial path for any worker count
        (see :mod:`repro.gemm.parallel`).
    exact_pack:
        Pack operands with the original nested-loop packer instead of
        the vectorized strided copy. Bit-identical buffers (asserted by
        tests); kept as the packing oracle.
    verify:
        ABFT verified execution (:mod:`repro.gemm.verify`): ``True`` for
        defaults, a :class:`~repro.gemm.verify.VerifyConfig` to tune the
        tolerance band, recovery ladder, or fault-injection plan. Each
        CB block's C update is checksum-validated at its barrier and
        healed (or reported) on mismatch; a clean verified run is
        bit-identical to an unverified one. With a non-oracle
        ``backend`` this is the headline scenario: a fast untrusted
        compute path checked against pack-time checksums, with the
        per-strip oracle as the trusted recovery rung.
    backend:
        Compute backend for numeric execution
        (:mod:`repro.gemm.backends`): a registered name (``"numpy"``,
        ``"blas-group"``, ``"torch"``) or a
        :class:`~repro.gemm.backends.Backend` instance. The schedule,
        packing, counters and timing model are backend-invariant; only
        how each strip group multiplies changes. Unknown or unavailable
        names raise a structured
        :class:`~repro.errors.BackendCapabilityError` here, at
        construction.
    processes:
        Worker *processes* for numeric execution
        (:mod:`repro.gemm.sharded`): the M x N grid of CB blocks is
        partitioned into a near-square shard grid, packed operands are
        placed in shared memory, and each shard runs this engine's
        threaded executor in its own process on a disjoint C panel.
        ``None``/1 is the ordinary in-process path; an int requests that
        many processes (clamped to the block grid); a
        :class:`~repro.gemm.sharded.ShardConfig` tunes rebuild/fallback
        behaviour. The product is bit-identical to the serial path for
        every (processes x workers x backend) combination. Incompatible
        with ``exact_pack`` (workers rebuild the vectorized pack's
        buffer grid) and with unregistered backend instances.
    pool:
        A :class:`~repro.packing.pool.BufferPool` to lease packed
        operand buffers from, or ``None`` for a private per-engine pool.
        Passing a shared pool (the serve layer does, per shape class)
        makes packed-buffer reuse span engines; the pool is
        thread-safe, so concurrent ``multiply`` calls through one pool
        are fine.
    plan:
        A :class:`~repro.gemm.plan.PlanOverride` replacing individual
        analytic plan fields (the autotuner's seam). Plan-shape fields
        (``alpha``/``mc``/``kc``) redirect the derivation; execution
        fields apply here: ``schedule`` selects a reduction-complete
        block-order variant, ``strips`` sets the host execution
        granularity (counters still price the modelled core count), and
        ``workers`` applies only when the engine got no explicit
        ``workers`` argument. Incompatible with ``tuned``.
    tuned:
        Resolve a :class:`PlanOverride` from the persistent tune cache
        per multiplied shape (:mod:`repro.tune`): ``True`` uses the
        process default :class:`~repro.tune.TuneConfig`, or pass a
        config; ``False`` disables tuning outright, and the default
        ``None`` defers to the process-wide switch
        (:func:`repro.tune.set_default_tune` — what ``cake-bench
        --tuned`` flips). A cache miss tunes synchronously on first
        use (the serve layer instead tunes off the request path via
        :class:`~repro.tune.PlanService`). Only :meth:`multiply`
        resolves tuned plans — :meth:`analyze` prices the analytic (or
        explicitly overridden) plan.
    """

    def __init__(
        self,
        machine: MachineSpec,
        *,
        cores: int | None = None,
        alpha: float | None = None,
        exact_tiles: bool = False,
        exact_walk: bool = False,
        workers: int | None = None,
        exact_pack: bool = False,
        verify: bool | VerifyConfig = False,
        backend: "str | Backend | None" = None,
        processes: "int | ShardConfig | None" = None,
        pool: "BufferPool | None" = None,
        plan: "PlanOverride | None" = None,
        tuned: object = None,
    ) -> None:
        self.machine = machine
        self.cores = cores
        self.alpha = alpha
        self.exact_tiles = exact_tiles
        self.exact_walk = exact_walk
        self.workers = resolve_workers(workers)
        self._workers_explicit = workers is not None
        self.override = plan
        self.tuned = tuned
        if plan is not None and tuned:
            raise ConfigurationError(
                "plan= and tuned= are mutually exclusive: an explicit "
                "override already decides the plan"
            )
        self.exact_pack = exact_pack
        self.verify = resolve_verify(verify)
        self.backend = resolve_backend(backend)
        self.shards = resolve_shards(processes)
        if self.shards is not None and self.exact_pack:
            raise ConfigurationError(
                "processes > 1 is incompatible with exact_pack: shard "
                "workers rebuild the vectorized pack's buffer grid over "
                "shared memory, which the loop oracle does not produce"
            )
        # An injected pool lets callers (the serve batcher) share packed
        # operand buffers across engines serving one shape class; the
        # default keeps each engine's reuse private, as before.
        self._pool = BufferPool() if pool is None else pool

    # -- public API ----------------------------------------------------------

    def plan_for(self, m: int, n: int, k: int) -> CakePlan:
        """The plan this engine would use for an ``m x k . k x n`` product."""
        return CakePlan.from_problem(
            self.machine,
            ComputationSpace(m, n, k),
            cores=self.cores,
            alpha=self.alpha,
            override=self.override,
        )

    def _tuned_override(
        self, space: ComputationSpace, dtype: np.dtype
    ) -> "PlanOverride | None":
        """The override for this multiply: explicit, tuned, or none."""
        if self.override is not None:
            return self.override
        tuned = self.tuned
        if tuned is None:  # defer to the process default (--tuned)
            from repro.tune import get_default_tune  # lazy: pkg cycle

            tuned = get_default_tune()
        if not tuned:
            return None
        from repro.tune import tuned_override  # lazy: pkg cycle

        return tuned_override(
            self.machine,
            engine="cake",
            space=space,
            dtype=dtype,
            cores=self.cores,
            backend=self.backend.name,
            processes=self.shards.processes if self.shards is not None else 1,
            config=None if tuned is True else tuned,
        )

    def multiply(self, a: np.ndarray, b: np.ndarray) -> GemmRun:
        """Compute ``A x B``, returning numerics plus full accounting.

        Operands may be F-ordered, transposed views or otherwise
        non-contiguous — packing copies them exactly once either way.
        Integer/boolean dtypes are rejected (silent overflow); float32
        operands accumulate in float32. Degenerate shapes follow BLAS:
        ``K == 0`` returns a zero-filled ``M x N`` C, ``M == 0`` or
        ``N == 0`` an empty one.
        """
        dtype = check_multiply_operands(a, b, backend=self.backend)
        m, k, n = a.shape[0], a.shape[1], b.shape[1]
        if m == 0 or n == 0 or k == 0:
            return degenerate_run(
                "cake", self.machine, m, n, k, dtype,
                cores=self.cores or self.machine.cores,
                workers=self.workers,
                backend=self.backend.name,
            )
        space = ComputationSpace(m, n, k)
        return self._run(space, a=a, b=b)

    def analyze(self, m: int, n: int, k: int) -> GemmRun:
        """Traffic and timing accounting only — no numerical execution.

        Same accounting as :meth:`multiply`, with ``c=None`` in the
        result; this is what the large-problem figure sweeps call. By
        default it runs the vectorized batch analyzer
        (:func:`repro.analysis.batch.analyze_cake_batch`), which is
        bit-for-bit identical to the scalar walk; pass
        ``exact_walk=True`` to the constructor to force the walk.
        """
        if self.exact_walk:
            return self._run(ComputationSpace(m, n, k))
        from repro.analysis.batch import analyze_cake_batch  # lazy: pkg cycle

        return analyze_cake_batch(
            self.machine,
            ComputationSpace(m, n, k),
            cores=self.cores,
            alpha=self.alpha,
            plan=self.plan_for(m, n, k) if self.override is not None else None,
            schedule=(self.override.schedule or "k-first")
            if self.override is not None
            else "k-first",
        )

    # -- the schedule walk ----------------------------------------------------

    def _run(
        self,
        space: ComputationSpace,
        a: np.ndarray | None = None,
        b: np.ndarray | None = None,
    ) -> GemmRun:
        machine = self.machine
        numeric = a is not None
        override = self.override
        if numeric:
            assert b is not None
            override = self._tuned_override(space, np.result_type(a, b))
        plan = CakePlan.from_problem(
            machine, space, cores=self.cores, alpha=self.alpha,
            override=override,
        )
        grid = plan.grid()
        schedule_name = "k-first"
        if override is not None and override.schedule is not None:
            schedule_name = override.schedule
        if schedule_name == "k-first":
            order = plan.schedule()
        else:
            from repro.schedule.variants import build_schedule

            order = build_schedule(schedule_name, grid)
        # Execution-only override fields: strip granularity (counters
        # still price the modelled core count) and worker threads (an
        # explicit workers= argument always wins). The sharded path keeps
        # its own internal granularity, so strips only shapes the
        # in-process executor's tasks.
        exec_granularity = override.strips if override is not None else None
        run_workers = self.workers
        if (
            override is not None
            and override.workers is not None
            and not self._workers_explicit
        ):
            run_workers = resolve_workers(override.workers)
        kernel = plan.kernel

        shards = self.shards if numeric else None
        verifying = numeric and self.verify is not None and self.verify.enabled
        timers = PhaseTimers()
        arena: SharedBufferPool | None = None
        if numeric:
            assert b is not None
            # Sharded runs pack into a shared-memory arena (workers
            # attach the segments zero-copy) and compute checksum
            # material inside each shard instead of at pack time.
            arena = SharedBufferPool() if shards is not None else None
            pool = arena if arena is not None else self._pool
            pack_start = time.perf_counter()
            packed_a = pack_a_cake(
                a, plan.m_block, plan.kc,
                pool=pool, exact=self.exact_pack,
                checksums=verifying and shards is None,
            )
            packed_b = pack_b_cake(
                b, plan.kc, plan.n_block,
                pool=pool, exact=self.exact_pack,
                checksums=verifying and shards is None,
            )
            timers.pack_seconds = time.perf_counter() - pack_start
            dtype = np.result_type(a, b)
            if arena is not None:
                c = arena.lease((space.m, space.n), dtype)
                c[...] = 0
            else:
                c = np.zeros((space.m, space.n), dtype=dtype)
        else:
            packed_a = packed_b = None
            c = None
        build_groups = numeric and shards is None
        groups: list[StripGroup] = []

        counters = TrafficCounters()
        counters.ext_pack = 2 * (space.m * space.k + space.k * space.n)
        pack = packing_cost(
            machine, space.m * space.k, space.k * space.n
        )
        counters.macs = space.macs

        total = ZERO_TIME
        bound_blocks: dict[str, int] = {"compute": 0, "external": 0, "internal": 0}
        progress: dict[tuple[int, int], int] = {}

        def on_evict(key, elements: int) -> None:
            if key[0] == "C":  # partial results forced out: spill + refetch
                counters.ext_c_spill += elements

        residency = SurfaceResidency(
            plan.residency_elements, on_evict=on_evict
        )

        for coord in order:
            ext = grid.extent(coord)
            m0, n0, k0 = grid.origin(coord)

            a_key = ("A", coord.mi, coord.ki)
            b_key = ("B", coord.ki, coord.ni)
            c_res_key = ("C", coord.mi, coord.ni)
            pinned = (a_key, b_key, c_res_key)

            a_el = (
                0
                if residency.touch(a_key, ext.surface_a, pinned=pinned)
                else ext.surface_a
            )
            b_el = (
                0
                if residency.touch(b_key, ext.surface_b, pinned=pinned)
                else ext.surface_b
            )
            counters.ext_a_read += a_el
            counters.ext_b_read += b_el

            c_key = (coord.mi, coord.ni)
            c_resident = residency.touch(
                c_res_key, ext.surface_c, pinned=pinned
            )
            if not c_resident and progress.get(c_key, 0):
                counters.ext_c_read += ext.surface_c
            progress[c_key] = progress.get(c_key, 0) + 1
            c_write_el = ext.surface_c if progress[c_key] == grid.kb else 0
            counters.ext_c_write += c_write_el
            if c_write_el:
                residency.invalidate(c_res_key)

            strips = _core_strips(ext.m, plan.cores)
            active = len(strips)
            cycles = kernel.panel_tile_cycles(max(strips), ext.n, ext.k)
            counters.tile_cycles += cycles

            internal = ext.surface_a + active * ext.surface_b + 2 * ext.surface_c
            counters.internal += internal

            bt = block_time(
                machine,
                active_cores=active,
                tile_cycles=cycles,
                kc=plan.kc,
                ext_bytes=(a_el + b_el + c_write_el) * machine.element_bytes,
                int_elements=internal,
            )
            total = total + bt
            bound_blocks[bt.bound] += 1

            if build_groups:
                assert packed_a is not None and packed_b is not None and c is not None
                a_block = packed_a.block(coord.mi, coord.ki)
                b_panel = packed_b.panel(coord.ki, coord.ni)
                c_view = c[m0 : m0 + ext.m, n0 : n0 + ext.n]
                exec_strips = (
                    strips
                    if exec_granularity is None
                    else _core_strips(ext.m, exec_granularity)
                )
                tasks: list[StripTask] = []
                r0 = 0
                for rows in exec_strips:
                    tasks.append(
                        StripTask(
                            a_block[r0 : r0 + rows],
                            b_panel,
                            c_view[r0 : r0 + rows],
                        )
                    )
                    r0 += rows
                groups.append(
                    StripGroup(
                        tasks=tasks,
                        index=len(groups),
                        coord=(coord.mi, coord.ni, coord.ki),
                        label=f"cake block (mi={coord.mi}, ni={coord.ni}, "
                        f"ki={coord.ki})",
                        checksum_a=(
                            packed_a.checksum(coord.mi, coord.ki)
                            if verifying else None
                        ),
                        checksum_b=(
                            packed_b.checksum(coord.ki, coord.ni)
                            if verifying else None
                        ),
                        panel=c_view,
                        fresh_panel=coord.ki == 0,
                        operand_a=a_block,
                        mag_a=(
                            packed_a.magnitude(coord.mi, coord.ki)
                            if verifying else None
                        ),
                        mag_b=(
                            packed_b.magnitude(coord.ki, coord.ni)
                            if verifying else None
                        ),
                    )
                )

        if counters.ext_c_spill or counters.ext_c_read:  # pragma: no cover
            raise ConfigurationError(
                "CAKE's reduction-complete schedules must never spill"
                " partial results"
            )

        report = None
        shard_report = None
        if numeric:
            assert packed_a is not None and packed_b is not None
            if shards is not None:
                assert arena is not None and c is not None
                try:
                    shard_plan = plan_shards(
                        shards.processes,
                        [
                            grid.extent(BlockCoord(mi, 0, 0)).m
                            for mi in range(grid.mb)
                        ],
                        [
                            grid.extent(BlockCoord(0, ni, 0)).n
                            for ni in range(grid.nb)
                        ],
                        space.k,
                    )
                    counters.ipc_bytes = (
                        shard_plan.ipc_elements * machine.element_bytes
                    )
                    shard_report, report = run_sharded(
                        engine="cake",
                        dims={
                            "m": space.m,
                            "n": space.n,
                            "k": space.k,
                            "m_block": plan.m_block,
                            "n_block": plan.n_block,
                            "kc": plan.kc,
                            "mr": machine.mr,
                            "nr": machine.nr,
                            "cores": plan.cores,
                        },
                        plan=shard_plan,
                        packed_a=packed_a,
                        packed_b=packed_b,
                        pool=arena,
                        c=c,
                        config=shards,
                        workers=run_workers,
                        backend=self.backend.name,
                        verify=self.verify,
                        exact_tiles=self.exact_tiles,
                        timers=timers,
                        element_bytes=machine.element_bytes,
                    )
                    c = c.copy()  # off the arena before it is destroyed
                finally:
                    arena.destroy()
            else:
                verifier = faults = None
                if self.verify is not None:
                    if self.verify.inject is not None:
                        from repro.runtime.faults import NumericFaultInjector

                        faults = NumericFaultInjector(self.verify.inject)
                    if verifying:
                        report = VerifyReport(
                            checksum_elements=packed_a.checksum_elements
                            + packed_b.checksum_elements
                        )
                        verifier = GroupVerifier(self.verify, report, timers)
                run_strip_groups(
                    groups,
                    kernel,
                    workers=run_workers,
                    exact_tiles=self.exact_tiles,
                    timers=timers,
                    verifier=verifier,
                    faults=faults,
                    backend=self.backend.create(
                        kernel=kernel, exact_tiles=self.exact_tiles
                    ),
                )
                packed_a.release_to(self._pool)
                packed_b.release_to(self._pool)

        plan_summary = {
            "alpha": plan.alpha,
            "mc": plan.mc,
            "kc": plan.kc,
            "m_block": plan.m_block,
            "n_block": plan.n_block,
            "blocks": grid.num_blocks,
        }
        if override is not None:
            plan_summary["override"] = override.as_dict()
            plan_summary["schedule"] = schedule_name
        return GemmRun(
            engine="cake",
            machine=machine,
            space=space,
            cores=plan.cores,
            counters=counters,
            time=total,
            packing_seconds=pack.seconds,
            bound_blocks=bound_blocks,
            plan_summary=plan_summary,
            c=c,
            workers=run_workers if numeric else 1,
            backend=self.backend.name if numeric else "numpy",
            phase_seconds=timers.as_dict() if numeric else None,
            verify=report,
            processes=shard_report.processes if shard_report is not None else 1,
            shards=shard_report,
        )
