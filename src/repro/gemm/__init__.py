"""GEMM engines: CAKE, the GOTO baseline, and a naive reference.

:class:`~repro.gemm.cake.CakeGemm` implements the paper's contribution:
CB-block partitioning (Section 3 shaping, Section 4.3 LRU sizing), the
K-first schedule of Algorithm 2, per-core strip execution with in-place
partial accumulation, and full traffic/time accounting.

:class:`~repro.gemm.goto.GotoGemm` is the baseline standing in for MKL,
ARMPL and OpenBLAS — the paper models all three as Goto's algorithm
(Section 4.1): L2-resident square A sub-blocks, an LLC-resident B panel as
wide as the cache allows, and partial C panels streamed to and from DRAM.

Both engines compute the true numerical product by executing exactly the
tile-level operations their schedules prescribe, and both return a
:class:`~repro.gemm.result.GemmRun` with the traffic counters and roofline
timing the benchmarks plot.

*How* a strip group multiplies is pluggable (:mod:`repro.gemm.backends`):
the per-strip numpy oracle, a whole-group BLAS call, or torch when
installed. The schedule, counters and timing model never change with the
backend — only the inner compute call does.
"""

from repro.gemm.backends import (
    Backend,
    BackendCapabilities,
    BackendCapabilityError,
    BackendSpec,
    available_backends,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.gemm.microkernel import MicroKernel
from repro.gemm.naive import naive_matmul, reference_matmul
from repro.gemm.counters import TrafficCounters
from repro.gemm.parallel import (
    PhaseTimers,
    StripGroup,
    StripTask,
    run_strip_groups,
)
from repro.gemm.plan import CakePlan, GotoPlan
from repro.gemm.result import GemmRun, degenerate_run
from repro.gemm.sharded import (
    IPC_SLACK_FACTOR,
    ShardConfig,
    ShardExecutionError,
    ShardPlan,
    ShardReport,
    ShardSpan,
    default_processes,
    ipc_lower_bound_elements,
    plan_shards,
    resolve_shards,
    select_shard_grid,
    set_default_processes,
)
from repro.gemm.verify import (
    NumericFaultError,
    VerifyConfig,
    VerifyReport,
    resolve_verify,
)
from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.gemm.blas import gemm

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendSpec",
    "available_backends",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "MicroKernel",
    "naive_matmul",
    "reference_matmul",
    "TrafficCounters",
    "PhaseTimers",
    "StripGroup",
    "StripTask",
    "run_strip_groups",
    "CakePlan",
    "GotoPlan",
    "GemmRun",
    "degenerate_run",
    "IPC_SLACK_FACTOR",
    "ShardConfig",
    "ShardExecutionError",
    "ShardPlan",
    "ShardReport",
    "ShardSpan",
    "default_processes",
    "ipc_lower_bound_elements",
    "plan_shards",
    "resolve_shards",
    "select_shard_grid",
    "set_default_processes",
    "NumericFaultError",
    "VerifyConfig",
    "VerifyReport",
    "resolve_verify",
    "CakeGemm",
    "GotoGemm",
    "gemm",
]
