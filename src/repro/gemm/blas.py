"""BLAS-style GEMM semantics over the engines.

The paper positions CAKE as "a drop-in replacement for MM calls used by
existing frameworks"; those calls are ``?gemm``:

    C <- alpha * op(A) @ op(B) + beta * C

with optional transposition of either operand. This module provides that
surface on top of any engine (CAKE or GOTO), preserving the engine's
traffic/timing report. Transposed operands are passed to the engine as
plain views: the packing pass copies every operand block-contiguous in a
single strided pass regardless of layout (Section 5.2.1), so a transposed
input costs exactly the same single copy as a plain one — no contiguous
staging copy happens here.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.result import GemmRun


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    transpose_a: bool = False,
    transpose_b: bool = False,
    engine=None,
) -> GemmRun:
    """General matrix multiply: ``alpha * op(A) @ op(B) + beta * C``.

    Parameters
    ----------
    a, b:
        2-D operands (before transposition).
    c:
        Accumulation target; required when ``beta != 0``. Never modified
        in place — the returned run's ``c`` is a fresh array.
    alpha, beta:
        The usual BLAS scalars.
    transpose_a, transpose_b:
        Apply ``op(X) = X.T``.
    engine:
        A GEMM engine with a ``multiply`` method; default CAKE on the
        Intel preset.

    Returns
    -------
    GemmRun
        The engine's full report; ``run.c`` holds the BLAS result.
    """
    if engine is None:
        from repro.gemm.cake import CakeGemm
        from repro.machines.presets import intel_i9_10900k

        engine = CakeGemm(intel_i9_10900k())

    a_op = a.T if transpose_a else a
    b_op = b.T if transpose_b else b
    if a_op.ndim != 2 or b_op.ndim != 2:
        raise ValueError("operands must be 2-D")
    if a_op.shape[1] != b_op.shape[0]:
        raise ValueError(
            f"inner dimensions disagree after transposition: "
            f"op(A) is {a_op.shape}, op(B) is {b_op.shape}"
        )

    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires an input C matrix")
        expected = (a_op.shape[0], b_op.shape[1])
        if c.shape != expected:
            raise ValueError(f"C has shape {c.shape}, expected {expected}")

    run = engine.multiply(a_op, b_op)
    assert run.c is not None
    if alpha != 1.0:
        run.c *= alpha
    if beta != 0.0:
        assert c is not None
        run.c += beta * c
        # The beta update reads and rewrites C once more through DRAM.
        run.counters.ext_c_read += c.size
        run.counters.ext_c_write += c.size
    return run
