"""The register-tile micro-kernel (Figures 5e / 6e).

CAKE's C++ implementation calls BLIS micro-kernels: an ``mr x kc`` sliver
of A times a ``kc x nr`` sliver of B accumulated into an ``mr x nr``
register tile of C. Here the same tiling is executed with NumPy. Two modes:

* ``panel_matmul(..., exact_tiles=True)`` walks every ``mr x nr`` register
  tile explicitly, accumulating in place — the schedule-faithful execution
  used by validation tests.
* ``exact_tiles=False`` (default) performs the mathematically identical
  panel product with one vectorised call — the fast path, per the HPC
  guide's "vectorise the inner loop" idiom.

Both accumulate into the caller's C buffer *in place* (no temporaries),
matching the in-place partial-result accumulation the paper's schedule
relies on.

:meth:`MicroKernel.panel_tile_cycles` is the timing side: the number of
model cycles the panel costs, counting ragged edge tiles as full tiles
(a partially-filled SIMD register costs the same as a full one).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import ceil_div, require_positive


@dataclass(frozen=True, slots=True)
class MicroKernel:
    """An ``mr x nr`` register-tile GEMM kernel with nominal depth ``kc``."""

    mr: int
    nr: int
    kc: int

    def __post_init__(self) -> None:
        require_positive("mr", self.mr)
        require_positive("nr", self.nr)
        require_positive("kc", self.kc)

    def tile_matmul(
        self, a_sliver: np.ndarray, b_sliver: np.ndarray, c_tile: np.ndarray
    ) -> None:
        """One register-tile update: ``c_tile += a_sliver @ b_sliver``.

        Shapes: ``a_sliver`` is ``(<=mr, k)``, ``b_sliver`` is ``(k, <=nr)``,
        ``c_tile`` is ``(<=mr, <=nr)``. Accumulates in place.
        """
        c_tile += a_sliver @ b_sliver

    def panel_matmul(
        self,
        a_panel: np.ndarray,
        b_panel: np.ndarray,
        c_panel: np.ndarray,
        *,
        exact_tiles: bool = False,
        checked: bool = True,
    ) -> None:
        """Accumulate ``c_panel += a_panel @ b_panel`` through the kernel.

        ``a_panel`` is ``(m, k)``, ``b_panel`` is ``(k, n)``, ``c_panel``
        is ``(m, n)``; all extents may be ragged. With ``exact_tiles`` the
        update walks every ``mr x nr`` register tile in the order a core
        would (nr-columns outer, mr-rows inner, so each B sliver is reused
        across all row strips before moving on).

        ``checked=False`` skips the shape validation — for executors that
        dispatch thousands of strips whose shapes are correct by
        construction (the packing grid and the C views come from the same
        plan), where the per-call Python branches are measurable overhead.
        """
        if checked:
            if a_panel.shape[0] != c_panel.shape[0]:
                raise ValueError(
                    f"A rows {a_panel.shape[0]} != C rows {c_panel.shape[0]}"
                )
            if b_panel.shape[1] != c_panel.shape[1]:
                raise ValueError(
                    f"B cols {b_panel.shape[1]} != C cols {c_panel.shape[1]}"
                )
            if a_panel.shape[1] != b_panel.shape[0]:
                raise ValueError(
                    f"A cols {a_panel.shape[1]} != B rows {b_panel.shape[0]}"
                )
        if not exact_tiles:
            c_panel += a_panel @ b_panel
            return
        m, n = c_panel.shape
        for j0 in range(0, n, self.nr):
            j1 = min(j0 + self.nr, n)
            b_sliver = b_panel[:, j0:j1]
            for i0 in range(0, m, self.mr):
                i1 = min(i0 + self.mr, m)
                self.tile_matmul(a_panel[i0:i1], b_sliver, c_panel[i0:i1, j0:j1])

    def panel_tile_cycles(self, m: int, n: int, k: int) -> float:
        """Model cycles for an ``(m, k) x (k, n)`` panel product.

        Ragged row/column tiles round *up* (a partial register tile costs
        a full cycle); ragged depth scales *linearly* (a shallower tile
        multiply retires proportionally fewer MACs), in units of the
        nominal ``kc``.
        """
        require_positive("m", m)
        require_positive("n", n)
        require_positive("k", k)
        return ceil_div(m, self.mr) * ceil_div(n, self.nr) * (k / self.kc)
