"""Process-level CB-block sharding over shared memory (CAKE-on-CAKE).

The paper's constant-bandwidth blocks compose across memory levels: the
same geometry that tiles one core's cache hierarchy tiles a pool of
*processes* one level up. This module is that next level — it partitions
the M x N grid of CB blocks into a near-square **shard grid**, gives each
shard to a worker process, and runs the existing threaded strip-group
executor (:mod:`repro.gemm.parallel`, with any registered backend)
inside each shard.

Transport is ``multiprocessing.shared_memory``: the parent packs A and B
once through a :class:`~repro.packing.pool.SharedBufferPool`, then ships
only *segment names* — workers attach the packed buffers zero-copy and
rebuild the identical block-view grids with
:func:`repro.packing.pack.grid_views`. C is a single shared output
buffer; every shard writes its disjoint row x column panel, so no two
processes ever touch the same byte of C.

Bit-identity
------------

The sharded product is **bit-identical** to the serial walk for any
(processes x threads x backend) combination, because sharding never
splits the K dimension: every C element's full ``+=`` accumulation
sequence lives inside exactly one shard, the shard walks the *global*
K-first schedule filtered to its blocks (same ki order, same strip
shapes, same backend calls), and floating-point addition order is
therefore unchanged. The conformance suite asserts this per backend.

Shard-grid selection
--------------------

For P processes the grid ``(pr, pc)`` with ``pr * pc = P`` replicates
packed A ``pc`` times and packed B ``pr`` times across processes, so the
measured inter-process traffic is ``pc*M*K + pr*K*N + M*N`` elements.
The memory-independent communication lower bound for matrix
multiplication on P unbounded-memory processors (Red-Blue Pebbling
Revisited / COSMA, and the tight memory-independent bounds of Al Daas,
Ballard et al.) is ``2*K*sqrt(M*N*P) + M*N`` elements in the 2D regime
this executor occupies (K unsplit). By AM-GM the measured traffic is
minimized — and meets the bound within block-quantization slack — when
``M/pr = N/pc``, i.e. the shard grid is near-square in *element* space.
:func:`plan_shards` therefore maximizes usable parallelism first (the
largest ``P' <= P`` with a factor pair that fits the block grid), then
picks the factor pair minimizing ``pc*M + pr*N``. The achieved traffic
is recorded in ``TrafficCounters.ipc_bytes`` and reported against the
bound in :class:`ShardReport`; benches assert it stays within
:data:`IPC_SLACK_FACTOR`.

Fault tolerance
---------------

A shard worker dying (``BrokenProcessPool``) triggers the same
pool-rebuild ladder the experiment runtime uses: the unfinished shards'
C panels are zeroed and resubmitted to a fresh pool, up to
``max_pool_rebuilds`` times, then degraded to inline in-parent execution
(where kill-type faults are inert by construction). With the fallback
disabled, a structured :class:`ShardExecutionError` names the shards
that never completed — a partially-computed C is never returned
silently. ABFT verification (:mod:`repro.gemm.verify`) runs *inside*
each shard worker, so checksum mismatches heal locally through the
usual ladder and unrecoverable ones propagate as
:class:`~repro.gemm.verify.NumericFaultError`.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Callable, NamedTuple, Sequence

import numpy as np

from repro.errors import CakeError, ConfigurationError, DeadlineExceededError
from repro.core.cb_block import CBBlock
from repro.gemm.backends.registry import backend_spec, registered_backends
from repro.gemm.microkernel import MicroKernel
from repro.gemm.parallel import (
    PhaseTimers,
    StripGroup,
    StripTask,
    core_strips,
    run_strip_groups,
)
from repro.gemm.verify import GroupVerifier, VerifyConfig, VerifyReport
from repro.packing.pack import (
    GridParts,
    PackedA,
    PackedB,
    grid_views,
)
from repro.packing.pool import SegmentSpec, SharedBufferPool
from repro.runtime.faults import NumericFaultInjector, mark_worker_process
from repro.schedule.kfirst import kfirst_schedule
from repro.schedule.space import BlockGrid, ComputationSpace
from repro.util import (
    require_nonnegative,
    require_positive,
    split_even,
    split_length,
)

#: Documented slack on the memory-independent communication lower bound:
#: the shard grid meets the bound up to (a) the AM-GM gap of the best
#: *integer* factor pair of P on the actual M:N aspect ratio and (b)
#: block-granularity quantization of the row/column splits. Both are
#: small for the benchmarked shapes (measured/bound is typically under
#: 1.15); 1.5 leaves honest headroom without letting a wrong formula
#: slip through. Benches assert ``bound <= ipc_bytes <= 1.5 * bound``.
IPC_SLACK_FACTOR = 1.5


# -- configuration -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ShardConfig:
    """How a process-sharded run executes.

    Parameters
    ----------
    processes:
        Worker processes requested. The usable count may be smaller when
        the CB block grid has fewer than ``processes`` blocks
        (:func:`plan_shards` clamps); 1 means no sharding at all.
    max_pool_rebuilds:
        How many times a crashed worker pool is rebuilt (unfinished
        shards zeroed and resubmitted) before degrading.
    inline_fallback:
        After the rebuild budget, run the remaining shards inline in the
        parent (kill faults are inert there, so the run still completes
        correctly). ``False`` raises :class:`ShardExecutionError`
        instead — never a silently partial C.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` where
        available (cheap, inherits the imported interpreter) and
        ``spawn`` otherwise.
    deadline:
        Absolute ``time.monotonic()`` instant by which the run must
        finish, or ``None`` for no bound. When the instant passes while
        shards are still outstanding the pool is killed — hung workers
        included — and :class:`~repro.errors.DeadlineExceededError`
        (stage ``"shard"``) is raised; a stale or partial C is never
        returned. This is how the serve layer's per-request deadlines
        reach the process-sharded path.
    """

    processes: int = 1
    max_pool_rebuilds: int = 2
    inline_fallback: bool = True
    start_method: str | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        require_positive("processes", self.processes)
        require_nonnegative("max_pool_rebuilds", self.max_pool_rebuilds)
        if (
            self.start_method is not None
            and self.start_method not in mp.get_all_start_methods()
        ):
            raise ConfigurationError(
                f"start method {self.start_method!r} not available on this "
                f"host; choose from {mp.get_all_start_methods()}"
            )


_DEFAULT_PROCESSES = 1


def default_processes() -> int:
    """The process-wide default shard count (what ``processes=None`` means)."""
    return _DEFAULT_PROCESSES


def set_default_processes(processes: int) -> int:
    """Change what ``processes=None`` resolves to, returning the old default.

    This is how ``cake-bench --processes N`` threads process sharding
    through code that constructs engines without an explicit
    ``processes`` argument, mirroring
    :func:`repro.gemm.backends.set_default_backend`.
    """
    global _DEFAULT_PROCESSES
    require_positive("processes", processes)
    old = _DEFAULT_PROCESSES
    _DEFAULT_PROCESSES = processes
    return old


def resolve_shards(
    processes: "int | ShardConfig | None",
) -> ShardConfig | None:
    """Normalize an engine's ``processes`` parameter.

    ``None`` means the process default (1 unless
    :func:`set_default_processes` changed it); an int wraps into a
    default :class:`ShardConfig`; a config passes through. ``None`` is
    returned whenever the effective process count is 1 — the engine then
    takes its ordinary in-process path.
    """
    if processes is None:
        processes = _DEFAULT_PROCESSES
    if isinstance(processes, ShardConfig):
        return processes if processes.processes > 1 else None
    if isinstance(processes, bool) or not isinstance(processes, int):
        raise TypeError(
            f"processes must be an int or ShardConfig, "
            f"got {type(processes).__name__}"
        )
    require_positive("processes", processes)
    if processes == 1:
        return None
    return ShardConfig(processes=processes)


# -- shard-grid selection ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ShardSpan:
    """One shard's slice of the CB block grid, in blocks and elements.

    ``mi0:mi1`` / ``ni0:ni1`` are half-open *block* index ranges along
    the M and N axes of the grid (for GOTO, block rows are the ``mc``
    strips and block columns the ``nc`` panels); ``m0``/``n0`` and the
    extents are the corresponding element ranges of C.
    """

    index: int
    row: int
    col: int
    mi0: int
    mi1: int
    ni0: int
    ni1: int
    m0: int
    m_extent: int
    n0: int
    n_extent: int


@dataclass(frozen=True)
class ShardPlan:
    """The chosen shard grid plus every shard's span and IPC accounting."""

    rows: int
    cols: int
    spans: tuple[ShardSpan, ...]
    m: int
    n: int
    k: int

    @property
    def processes(self) -> int:
        """Usable worker processes (``rows * cols``)."""
        return self.rows * self.cols

    @property
    def ipc_elements(self) -> int:
        """Deterministic inter-process traffic of this plan, in elements.

        Each shard attaches its ``m_s x K`` slice of packed A, its
        ``K x n_s`` slice of packed B, and writes its ``m_s x n_s`` C
        panel: summed over shards this is exactly
        ``cols*M*K + rows*K*N + M*N``. Derived from the plan, never
        measured — the same number for every run of the same problem.
        """
        return sum(
            s.m_extent * self.k + self.k * s.n_extent + s.m_extent * s.n_extent
            for s in self.spans
        )

    @property
    def ipc_lower_bound_elements(self) -> float:
        """The memory-independent bound for this plan's process count."""
        return ipc_lower_bound_elements(self.m, self.n, self.k, self.processes)


def ipc_lower_bound_elements(m: int, n: int, k: int, processes: int) -> float:
    """Memory-independent communication lower bound, in elements.

    The tight bound for C = A x B on ``P`` processors with unbounded
    local memory, in the 2D regime (K never split — which is structural
    here: splitting K would change summation order and break
    bit-identity): every processor must move at least
    ``2*K*sqrt(M*N/P)`` input elements, and the C surface moves once,
    so the total is ``2*K*sqrt(M*N*P) + M*N``. See Red-Blue Pebbling
    Revisited (COSMA) and "Tight Memory-Independent Parallel Matrix
    Multiplication Communication Lower Bounds".
    """
    require_positive("processes", processes)
    return 2.0 * k * math.sqrt(float(m) * float(n) * processes) + float(m) * n


def select_shard_grid(
    processes: int, mb: int, nb: int, m: int, n: int
) -> tuple[int, int]:
    """The ``(rows, cols)`` shard grid for ``processes`` workers.

    Maximizes usable parallelism first: the largest ``P' <= processes``
    with a factor pair ``(pr, pc)``, ``pr <= mb`` and ``pc <= nb``, wins
    (``P' = 1`` always exists). Among that ``P'``'s factor pairs, the
    pair minimizing replicated input traffic ``pc*M + pr*N`` is chosen
    — the discrete form of the near-square ``M/pr = N/pc`` optimum of
    the communication bound — with near-squareness in *block* space as
    the deterministic tie-break.
    """
    require_positive("processes", processes)
    require_positive("mb", mb)
    require_positive("nb", nb)
    for p_eff in range(min(processes, mb * nb), 0, -1):
        pairs = [
            (r, p_eff // r)
            for r in range(1, p_eff + 1)
            if p_eff % r == 0 and r <= mb and p_eff // r <= nb
        ]
        if pairs:
            return min(
                pairs,
                key=lambda rc: (rc[1] * m + rc[0] * n, abs(rc[0] - rc[1]), rc[0]),
            )
    raise AssertionError("unreachable: (1, 1) always fits")  # pragma: no cover


def plan_shards(
    processes: int,
    row_extents: Sequence[int],
    col_extents: Sequence[int],
    k: int,
) -> ShardPlan:
    """Partition a block grid into shards for ``processes`` workers.

    ``row_extents``/``col_extents`` are the element heights/widths of
    the grid's block rows and columns (CAKE: CB block extents; GOTO:
    ``mc`` strips and ``nc`` panels). Block rows/columns are split into
    balanced contiguous runs — every shard gets at least one block row
    and one block column, so the spans tile the grid exactly (asserted
    by hypothesis in the tests).
    """
    mb, nb = len(row_extents), len(col_extents)
    m, n = int(sum(row_extents)), int(sum(col_extents))
    rows, cols = select_shard_grid(processes, mb, nb, m, n)
    row_blocks = split_even(mb, rows)
    col_blocks = split_even(nb, cols)
    spans: list[ShardSpan] = []
    mi0 = m0 = 0
    for r, rb in enumerate(row_blocks):
        mi1 = mi0 + rb
        m_extent = int(sum(row_extents[mi0:mi1]))
        ni0 = n0 = 0
        for c_idx, cb in enumerate(col_blocks):
            ni1 = ni0 + cb
            n_extent = int(sum(col_extents[ni0:ni1]))
            spans.append(
                ShardSpan(
                    index=len(spans),
                    row=r,
                    col=c_idx,
                    mi0=mi0,
                    mi1=mi1,
                    ni0=ni0,
                    ni1=ni1,
                    m0=m0,
                    m_extent=m_extent,
                    n0=n0,
                    n_extent=n_extent,
                )
            )
            ni0, n0 = ni1, n0 + n_extent
        mi0, m0 = mi1, m0 + m_extent
    return ShardPlan(
        rows=rows, cols=cols, spans=tuple(spans), m=m, n=n, k=int(k)
    )


# -- results and errors --------------------------------------------------------


class ShardExecutionError(CakeError):
    """Shard workers did not complete and the inline fallback is off.

    Carries the ``(row, col)`` grid coordinates of every unfinished
    shard and the rebuilds attempted — the structured "C was not
    computed" signal, as opposed to silently returning a partial
    product.
    """

    def __init__(
        self, shards: Sequence[tuple[int, int]], rebuilds: int
    ) -> None:
        self.shards = tuple(shards)
        self.rebuilds = rebuilds
        names = ", ".join(f"({r}, {c})" for r, c in self.shards)
        super().__init__(
            f"{len(self.shards)} shard worker(s) did not complete after "
            f"{rebuilds} pool rebuild(s) [shards {names}]; refusing to "
            f"return a partially-computed C (enable inline_fallback to "
            f"degrade to in-process execution instead)"
        )

    def __reduce__(self):
        return (ShardExecutionError, (self.shards, self.rebuilds))


@dataclass(slots=True)
class ShardReport:
    """What a process-sharded run did, for ``GemmRun.shards``.

    ``shard_phase_seconds`` holds one dict per shard (ordered by shard
    index) with the shard's grid coordinates and its worker's
    pack/compute/reduce/verify/recover wall-clock. ``ipc_bytes`` is the
    plan-derived inter-process traffic, ``ipc_lower_bound_bytes`` the
    memory-independent bound for the same process count
    (:func:`ipc_lower_bound_elements`); their ratio — :attr:`slack` —
    is asserted under :data:`IPC_SLACK_FACTOR` by the bench.
    """

    rows: int
    cols: int
    workers: int
    start_method: str
    shard_phase_seconds: list[dict] = field(default_factory=list)
    ipc_bytes: int = 0
    ipc_lower_bound_bytes: float = 0.0
    pool_rebuilds: int = 0
    inline_shards: int = 0

    @property
    def processes(self) -> int:
        """Usable worker processes (``rows * cols``)."""
        return self.rows * self.cols

    @property
    def slack(self) -> float:
        """Measured IPC over the lower bound (>= 1.0 by construction)."""
        if self.ipc_lower_bound_bytes == 0.0:
            return 0.0
        return self.ipc_bytes / self.ipc_lower_bound_bytes

    def as_dict(self) -> dict:
        """Flat dict for bench rows and JSON emission."""
        return {
            "rows": self.rows,
            "cols": self.cols,
            "processes": self.processes,
            "workers": self.workers,
            "start_method": self.start_method,
            "ipc_bytes": self.ipc_bytes,
            "ipc_lower_bound_bytes": self.ipc_lower_bound_bytes,
            "ipc_slack": self.slack,
            "pool_rebuilds": self.pool_rebuilds,
            "inline_shards": self.inline_shards,
            "shards": list(self.shard_phase_seconds),
        }


# -- shared-memory transport ---------------------------------------------------


class PackedHandle(NamedTuple):
    """Picklable description of one packed matrix in shared memory.

    ``segments`` are the (up to four) :class:`GridParts` buffers in
    ``(main, right, bottom, corner)`` order; together with the grid
    extents a worker rebuilds the parent's exact packed block views.
    ``row_chunk``/``col_chunk`` are the pack's tiling arguments
    (``mc``/``kc`` for A, ``kc``/``n_block`` for B).
    """

    row_chunk: int
    col_chunk: int
    segments: tuple[SegmentSpec | None, ...]
    r_full: int
    c_full: int


def _pack_handle(
    packed: "PackedA | PackedB", pool: SharedBufferPool, kind: str
) -> PackedHandle:
    parts = packed.parts
    if parts is None:  # pragma: no cover - engines force vectorized packs
        raise ConfigurationError(
            "sharded execution requires the vectorized pack "
            "(exact_pack is incompatible with processes > 1)"
        )
    segments = tuple(
        None if part is None else pool.segment_of(part)
        for part in (parts.main, parts.right, parts.bottom, parts.corner)
    )
    if kind == "a":
        assert isinstance(packed, PackedA)
        return PackedHandle(
            row_chunk=packed.mc,
            col_chunk=packed.kc,
            segments=segments,
            r_full=parts.r_full,
            c_full=parts.c_full,
        )
    assert isinstance(packed, PackedB)
    return PackedHandle(
        row_chunk=packed.kc,
        col_chunk=packed.n_block,
        segments=segments,
        r_full=parts.r_full,
        c_full=parts.c_full,
    )


#: Whether attaching a segment in *this* process must undo the resource
#: tracker's registration (pre-3.13 fallback only). True exactly in
#: spawn-started workers, which own a private tracker that would
#: otherwise unlink the parent's segments when the worker exits. Fork
#: workers and the parent itself share one tracker holding the create
#: registration — unregistering there would break the parent's own
#: cleanup. Set by :func:`_worker_init`.
_UNTRACK_ATTACH = False


def _worker_init(untrack_attach: bool) -> None:
    """Pool initializer: worker marking + tracker policy for attaches."""
    global _UNTRACK_ATTACH
    _UNTRACK_ATTACH = untrack_attach
    mark_worker_process()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without taking tracker ownership.

    The parent owns (and unlinks) every segment. Python 3.13's
    ``track=False`` expresses that directly; earlier versions register
    the attach with a resource tracker, which is harmless when that
    tracker is shared with the parent (fork, or inline execution — a
    set-typed duplicate of the create registration) but fatal under
    spawn, where the worker's *private* tracker would unlink the
    segment on worker exit — hence the conditional unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        segment = shared_memory.SharedMemory(name=name)
        if _UNTRACK_ATTACH:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(
                    getattr(segment, "_name", segment.name), "shared_memory"
                )
            except Exception:  # pragma: no cover - best-effort hygiene
                pass
        return segment


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs, in picklable primitives + handles."""

    engine: str
    dims: dict
    span: ShardSpan
    a_handle: PackedHandle
    b_handle: PackedHandle
    c_segment: SegmentSpec
    workers: int
    backend: str
    verify: VerifyConfig | None
    exact_tiles: bool


# -- worker side ---------------------------------------------------------------


def _operand_sums(
    cache: dict, key, block: np.ndarray, axis: int
) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray], int]:
    """A block's ABFT checksum + magnitude pair, cached per operand.

    Shard workers compute checksum material from the attached packed
    blocks themselves (shipping the parent's checksum buffers would
    double the descriptor surface for no gain — the identities are
    self-consistent within the worker). Returns the fresh element count
    so the shard's ``VerifyReport.checksum_elements`` stays honest.
    """
    hit = cache.get(key)
    if hit is not None:
        return hit[0], hit[1], 0
    cs = block.sum(axis=axis)
    ab = np.abs(block)
    mag = (ab.sum(axis=0), ab.sum(axis=1))
    cache[key] = (cs, mag)
    return cs, mag, cs.size + mag[0].size + mag[1].size


def _cake_groups(
    task: _ShardTask, packed_a: PackedA, packed_b: PackedB, c: np.ndarray
) -> tuple[list[StripGroup], int]:
    """This shard's strip groups, in global K-first schedule order.

    The worker rebuilds the *global* block grid and walks the *global*
    schedule, keeping only blocks inside its span — so group indices
    (the fault-injection and verification keys) and per-block strip
    shapes are identical to the serial engine's, which is the whole
    bit-identity argument.
    """
    d = task.dims
    grid = BlockGrid(
        ComputationSpace(d["m"], d["n"], d["k"]),
        CBBlock(m=d["m_block"], n=d["n_block"], k=d["kc"]),
    )
    span = task.span
    verifying = task.verify is not None and task.verify.enabled
    a_sums: dict[tuple[int, int], tuple] = {}
    b_sums: dict[tuple[int, int], tuple] = {}
    checksum_elements = 0
    groups: list[StripGroup] = []
    for index, coord in enumerate(kfirst_schedule(grid)):
        if not (
            span.mi0 <= coord.mi < span.mi1
            and span.ni0 <= coord.ni < span.ni1
        ):
            continue
        ext = grid.extent(coord)
        m0, n0, _k0 = grid.origin(coord)
        a_block = packed_a.block(coord.mi, coord.ki)
        b_panel = packed_b.panel(coord.ki, coord.ni)
        c_view = c[m0 : m0 + ext.m, n0 : n0 + ext.n]
        tasks: list[StripTask] = []
        r0 = 0
        for rows in core_strips(ext.m, d["cores"]):
            tasks.append(
                StripTask(
                    a_block[r0 : r0 + rows], b_panel, c_view[r0 : r0 + rows]
                )
            )
            r0 += rows
        cs_a = cs_b = mag_a = mag_b = None
        if verifying:
            cs_a, mag_a, fresh = _operand_sums(
                a_sums, (coord.mi, coord.ki), a_block, axis=0
            )
            checksum_elements += fresh
            cs_b, mag_b, fresh = _operand_sums(
                b_sums, (coord.ki, coord.ni), b_panel, axis=1
            )
            checksum_elements += fresh
        groups.append(
            StripGroup(
                tasks=tasks,
                index=index,
                coord=(coord.mi, coord.ni, coord.ki),
                label=f"cake block (mi={coord.mi}, ni={coord.ni}, "
                f"ki={coord.ki}) [shard ({span.row}, {span.col})]",
                checksum_a=cs_a,
                checksum_b=cs_b,
                panel=c_view,
                fresh_panel=coord.ki == 0,
                operand_a=a_block,
                mag_a=mag_a,
                mag_b=mag_b,
            )
        )
    return groups, checksum_elements


def _goto_groups(
    task: _ShardTask, packed_a: PackedA, packed_b: PackedB, c: np.ndarray
) -> tuple[list[StripGroup], int]:
    """This shard's GOTO slice groups, in the serial nest's (ni, ki) order.

    Group indices are the global ``ni * Kb + ki`` positions of the
    serial loop nest. Strip indices within a group are shard-local
    (the shard owns a contiguous run of ``mc`` strips), which only
    affects fault-injection targeting — never the numerics.
    """
    d = task.dims
    m, n, k = d["m"], d["n"], d["k"]
    m_strips = split_length(m, min(d["mc"], m))
    n_sizes = split_length(n, min(d["nc"], n))
    k_sizes = split_length(k, min(d["kc"], k))
    m_off = _prefix(m_strips)
    n_off = _prefix(n_sizes)
    kb = len(k_sizes)
    span = task.span
    verifying = task.verify is not None and task.verify.enabled
    grouped = backend_spec(task.backend).capabilities.grouped
    a_full: dict[int, np.ndarray] = {}
    a_sums: dict[int, tuple] = {}
    b_sums: dict[tuple[int, int], tuple] = {}
    checksum_elements = 0
    groups: list[StripGroup] = []
    for ni in range(span.ni0, span.ni1):
        nc_actual = n_sizes[ni]
        n0 = n_off[ni]
        for ki in range(kb):
            b_panel = packed_b.panel(ki, ni)
            tasks = [
                StripTask(
                    packed_a.block(strip, ki),
                    b_panel,
                    c[
                        m_off[strip] : m_off[strip] + m_strips[strip],
                        n0 : n0 + nc_actual,
                    ],
                )
                for strip in range(span.mi0, span.mi1)
            ]
            operand_a = None
            if verifying or grouped:
                if ki not in a_full:
                    parts = [
                        packed_a.block(s, ki)
                        for s in range(span.mi0, span.mi1)
                    ]
                    a_full[ki] = (
                        parts[0]
                        if len(parts) == 1
                        else np.concatenate(parts, axis=0)
                    )
                operand_a = a_full[ki]
            cs_a = cs_b = mag_a = mag_b = None
            if verifying:
                cs_a, mag_a, fresh = _operand_sums(
                    a_sums, ki, operand_a, axis=0
                )
                checksum_elements += fresh
                cs_b, mag_b, fresh = _operand_sums(
                    b_sums, (ki, ni), b_panel, axis=1
                )
                checksum_elements += fresh
            groups.append(
                StripGroup(
                    tasks=tasks,
                    index=ni * kb + ki,
                    coord=(ni, ki),
                    label=f"goto slice (ni={ni}, ki={ki}) "
                    f"[shard ({span.row}, {span.col})]",
                    checksum_a=cs_a,
                    checksum_b=cs_b,
                    panel=c[
                        span.m0 : span.m0 + span.m_extent, n0 : n0 + nc_actual
                    ],
                    fresh_panel=ki == 0,
                    operand_a=operand_a,
                    mag_a=mag_a,
                    mag_b=mag_b,
                )
            )
    return groups, checksum_elements


def _prefix(sizes: Sequence[int]) -> list[int]:
    out = [0]
    for size in sizes[:-1]:
        out.append(out[-1] + size)
    return out


def _attach_packed(
    handle: PackedHandle,
    attach: Callable[[SegmentSpec], np.ndarray],
    kind: str,
) -> "PackedA | PackedB":
    buffers = [None if s is None else attach(s) for s in handle.segments]
    parts = GridParts(
        buffers[0], buffers[1], buffers[2], buffers[3],
        handle.r_full, handle.c_full,
    )
    grid = grid_views(parts)
    if kind == "a":
        return PackedA(
            blocks=grid, mc=handle.row_chunk, kc=handle.col_chunk, parts=parts
        )
    return PackedB(
        panels=grid,
        kc=handle.row_chunk,
        n_block=handle.col_chunk,
        parts=parts,
    )


def _run_attached(
    task: _ShardTask, attach: Callable[[SegmentSpec], np.ndarray]
) -> dict:
    """The shard body: rebuild views, build groups, run the executor.

    Every array built here (packed views, C views, verifier state) is
    local to this frame, so when it returns only the segment handles
    remain and :func:`_execute_shard` can close the mappings cleanly.
    """
    d = task.dims
    packed_a = _attach_packed(task.a_handle, attach, kind="a")
    packed_b = _attach_packed(task.b_handle, attach, kind="b")
    c = attach(task.c_segment)
    if task.engine == "cake":
        groups, checksum_elements = _cake_groups(task, packed_a, packed_b, c)
    else:
        groups, checksum_elements = _goto_groups(task, packed_a, packed_b, c)
    timers = PhaseTimers()
    verifier = faults = None
    report = None
    if task.verify is not None:
        if task.verify.inject is not None:
            faults = NumericFaultInjector(task.verify.inject)
        if task.verify.enabled:
            report = VerifyReport(checksum_elements=checksum_elements)
            verifier = GroupVerifier(task.verify, report, timers)
    kernel = MicroKernel(mr=d["mr"], nr=d["nr"], kc=d["kc"])
    backend = backend_spec(task.backend).create(
        kernel=kernel, exact_tiles=task.exact_tiles
    )
    run_strip_groups(
        groups,
        kernel,
        workers=task.workers,
        exact_tiles=task.exact_tiles,
        timers=timers,
        verifier=verifier,
        faults=faults,
        backend=backend,
    )
    return {
        "shard": task.span.index,
        "row": task.span.row,
        "col": task.span.col,
        "groups": len(groups),
        "phases": timers.as_dict(),
        "workers": timers.workers,
        "verify": None if report is None else report.as_dict(),
    }


def _execute_shard(task: _ShardTask) -> dict:
    """Worker entry point (also the inline-fallback body in the parent)."""
    segments: list[shared_memory.SharedMemory] = []

    def attach(spec: SegmentSpec) -> np.ndarray:
        segment = _attach_segment(spec.name)
        segments.append(segment)
        return np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype_str), buffer=segment.buf
        )

    try:
        return _run_attached(task, attach)
    finally:
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - error-path traceback
                pass  # frames still view the mapping; process exit frees it


# -- orchestrator --------------------------------------------------------------


def _default_start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Force-tear-down a pool whose workers may be dead or wedged."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=2.0)


def _zero_panel(c: np.ndarray, span: ShardSpan) -> None:
    c[span.m0 : span.m0 + span.m_extent, span.n0 : span.n0 + span.n_extent] = 0


def run_sharded(
    *,
    engine: str,
    dims: dict,
    plan: ShardPlan,
    packed_a: PackedA,
    packed_b: PackedB,
    pool: SharedBufferPool,
    c: np.ndarray,
    config: ShardConfig,
    workers: int,
    backend: str,
    verify: VerifyConfig | None,
    exact_tiles: bool,
    timers: PhaseTimers,
    element_bytes: int,
) -> tuple[ShardReport, VerifyReport | None]:
    """Execute a shard plan over a process pool; heal or fail structured.

    ``packed_a``/``packed_b`` must have been packed through ``pool`` (a
    :class:`~repro.packing.pool.SharedBufferPool`) and ``c`` leased from
    it, zero-filled. On return, ``c`` holds the product — the caller
    copies it out before destroying the arena. Worker phase timers are
    summed into ``timers``; per-shard breakdowns, rebuild counts and the
    IPC-vs-bound comparison come back in the :class:`ShardReport`.
    """
    if backend not in registered_backends():
        raise ConfigurationError(
            f"sharded execution requires a registered backend name "
            f"(worker processes rebuild the backend from its registry "
            f"entry); {backend!r} is not registered"
        )
    handle_a = _pack_handle(packed_a, pool, kind="a")
    handle_b = _pack_handle(packed_b, pool, kind="b")
    c_segment = pool.segment_of(c)
    tasks = {
        span.index: _ShardTask(
            engine=engine,
            dims=dims,
            span=span,
            a_handle=handle_a,
            b_handle=handle_b,
            c_segment=c_segment,
            workers=workers,
            backend=backend,
            verify=verify,
            exact_tiles=exact_tiles,
        )
        for span in plan.spans
    }
    start_method = config.start_method or _default_start_method()
    ctx = mp.get_context(start_method)

    def _remaining() -> float | None:
        """Seconds left on the config deadline; raises once it passes."""
        if config.deadline is None:
            return None
        remaining = config.deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceededError("shard")
        return remaining

    pending = dict(tasks)
    results: dict[int, dict] = {}
    rebuilds = 0
    inline = 0
    pool_exec: ProcessPoolExecutor | None = None
    barrier_start = time.perf_counter()
    try:
        while pending:
            _remaining()
            if rebuilds > config.max_pool_rebuilds:
                if not config.inline_fallback:
                    raise ShardExecutionError(
                        shards=tuple(
                            (tasks[i].span.row, tasks[i].span.col)
                            for i in sorted(pending)
                        ),
                        rebuilds=rebuilds,
                    )
                # Degraded mode: run the unfinished shards in-parent.
                # Kill-type numeric faults are inert here, so a
                # persistently-killing plan still converges to the
                # correct C (or raises through the verify ladder).
                for index in sorted(pending):
                    _remaining()
                    task = pending.pop(index)
                    _zero_panel(c, task.span)
                    results[index] = _execute_shard(task)
                    inline += 1
                break
            if pool_exec is None:
                pool_exec = ProcessPoolExecutor(
                    max_workers=min(config.processes, len(pending)),
                    mp_context=ctx,
                    initializer=_worker_init,
                    initargs=(start_method != "fork",),
                )
            futures = {
                pool_exec.submit(_execute_shard, task): index
                for index, task in sorted(pending.items())
            }
            broken = False
            try:
                # The timeout bounds the whole barrier wait: a worker
                # that hangs (not just crashes) past the deadline is
                # killed via the finally-clause teardown rather than
                # stranding this call forever.
                for future in as_completed(futures, timeout=_remaining()):
                    index = futures[future]
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        broken = True
                        break
                    pending.pop(index)
            except FuturesTimeoutError:
                raise DeadlineExceededError("shard") from None
            if broken:
                _kill_pool(pool_exec)
                pool_exec = None
                rebuilds += 1
                # Completed shards' disjoint C panels stand; every
                # unfinished shard restarts from a zeroed panel.
                for task in pending.values():
                    _zero_panel(c, task.span)
    finally:
        if pool_exec is not None:
            _kill_pool(pool_exec)

    timers.reduce_seconds += time.perf_counter() - barrier_start
    ordered = [results[index] for index in sorted(results)]
    merged: VerifyReport | None = None
    for res in ordered:
        phases = res["phases"]
        timers.compute_seconds += phases["compute"]
        timers.verify_seconds += phases["verify"]
        timers.recover_seconds += phases["recover"]
        timers.workers = max(timers.workers, res["workers"])
        v = res["verify"]
        if v is not None:
            if merged is None:
                merged = VerifyReport()
            merged.blocks += v["blocks"]
            merged.verified += v["verified"]
            merged.mismatches += v["mismatches"]
            merged.retries += v["retries"]
            merged.retry_recoveries += v["retry_recoveries"]
            merged.oracle_recoveries += v["oracle_recoveries"]
            merged.checksum_elements += v["checksum_elements"]
    report = ShardReport(
        rows=plan.rows,
        cols=plan.cols,
        workers=workers,
        start_method=start_method,
        shard_phase_seconds=[
            {
                "shard": res["shard"],
                "row": res["row"],
                "col": res["col"],
                "groups": res["groups"],
                **res["phases"],
            }
            for res in ordered
        ],
        ipc_bytes=plan.ipc_elements * element_bytes,
        ipc_lower_bound_bytes=plan.ipc_lower_bound_elements * element_bytes,
        pool_rebuilds=rebuilds,
        inline_shards=inline,
    )
    return report, merged
