"""The GemmRun result type returned by every engine.

Bundles the numerical product with the traffic counters, the roofline time
breakdown, and the derived metrics the paper plots: computation throughput
in GFLOP/s (Figures 9-12 b-panels) and average observed DRAM bandwidth in
GB/s (Figures 10a/11a/12a). Packing time and traffic are included in both,
as in the paper's measurements (Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.gemm.counters import TrafficCounters
from repro.machines.spec import MachineSpec
from repro.perfmodel.roofline import ZERO_TIME, BlockTime
from repro.schedule.space import ComputationSpace, DegenerateSpace

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.gemm.sharded import ShardReport
    from repro.gemm.verify import VerifyReport


@dataclass(slots=True)
class GemmRun:
    """Everything one engine execution produced.

    Attributes
    ----------
    c:
        The numerical product (``None`` for analytic-only runs).
    engine:
        ``"cake"`` or ``"goto"``.
    machine:
        The machine the run was priced on.
    space:
        Problem extents.
    cores:
        Cores used.
    counters:
        Element-level traffic tallies.
    time:
        Summed roofline breakdown over all blocks (excludes packing).
    packing_seconds:
        Time charged to packing A and B.
    bound_blocks:
        How many blocks each resource bounded — the bottleneck histogram
        behind the paper's narrative for each platform.
    plan_summary:
        The tiling parameters the plan chose, for reporting.
    workers:
        Host threads the numeric executor ran with (1 for the inline
        serial path and for analytic-only runs). Distinct from ``cores``,
        which is the *modelled* core count the plan and pricing use.
    backend:
        Name of the compute backend the numerics executed through
        (:mod:`repro.gemm.backends`): ``"numpy"`` (the per-strip
        oracle — also recorded for analytic-only runs, which execute
        nothing), ``"blas-group"``, ``"torch"``, or a user backend's
        name. Results from different backends agree within each
        backend's declared agreement band; results from the *same*
        backend are bit-identical across worker counts.
    phase_seconds:
        Measured wall-clock of the numeric run's phases — ``pack``
        (packed-operand construction), ``compute`` (kernel time summed
        across workers), ``reduce`` (orchestrator barrier waits),
        ``verify``/``recover`` (ABFT checksum validation and recovery).
        ``None`` for analytic-only runs. This is host wall time, *not* the
        modelled :attr:`seconds`; it exists so the execution engine can be
        profiled.
    verify:
        ABFT accounting when the run executed verified
        (:mod:`repro.gemm.verify`): blocks checked, mismatches seen,
        recoveries taken, checksum surface carried. ``None`` for
        unverified runs — TrafficCounters themselves never change with
        verification, which is what keeps verified and unverified
        accounting bit-identical.
    processes:
        Worker *processes* the numerics ran across
        (:mod:`repro.gemm.sharded`); 1 for ordinary in-process runs.
        Like ``workers`` this describes host execution, not the
        modelled ``cores``.
    shards:
        The shard grid, per-shard phase timers, measured inter-process
        bytes vs the communication lower bound, and rebuild/fallback
        counts when the run was process-sharded; ``None`` otherwise.
    """

    engine: str
    machine: MachineSpec
    space: ComputationSpace | DegenerateSpace
    cores: int
    counters: TrafficCounters
    time: BlockTime
    packing_seconds: float
    bound_blocks: dict[str, int] = field(default_factory=dict)
    plan_summary: dict[str, float] = field(default_factory=dict)
    c: np.ndarray | None = None
    workers: int = 1
    backend: str = "numpy"
    phase_seconds: dict[str, float] | None = None
    verify: "VerifyReport | None" = None
    processes: int = 1
    shards: "ShardReport | None" = None

    @property
    def seconds(self) -> float:
        """Wall time: block execution plus packing."""
        return self.time.seconds + self.packing_seconds

    @property
    def flops(self) -> int:
        """Useful floating-point operations (``2 * M * N * K``)."""
        return self.space.flops

    @property
    def gflops(self) -> float:
        """Computation throughput, packing overhead included.

        Zero for degenerate (zero-volume) runs, which take zero modelled
        time.
        """
        if self.seconds == 0.0:
            return 0.0
        return self.flops / self.seconds / 1e9

    @property
    def dram_bytes(self) -> float:
        """Physical external traffic in bytes, packing included.

        Counted operand bytes scaled by the machine's
        ``external_traffic_factor`` — the quantity a hardware DRAM
        counter (and hence the paper's a-panels) reports.
        """
        return (
            self.counters.ext_total_bytes(self.machine.element_bytes)
            * self.machine.external_traffic_factor
        )

    @property
    def dram_bytes_with_verify(self) -> float:
        """External traffic including the ABFT checksum surfaces.

        The constant-bandwidth claim re-checked *with* verification
        overhead: the checksum vectors add ``O(M*Kb + K*Nb)`` elements on
        top of the ``O(MK + KN + MN)`` operand traffic — for square
        problems a vanishing fraction, which tests pin. Equals
        :attr:`dram_bytes` for unverified runs.
        """
        if self.verify is None:
            return self.dram_bytes
        return self.dram_bytes + self.verify.checksum_bytes(
            self.machine.element_bytes
        ) * self.machine.external_traffic_factor

    @property
    def dram_gb_per_s(self) -> float:
        """Average observed DRAM bandwidth over the whole run."""
        if self.seconds == 0.0:
            return 0.0
        return self.dram_bytes / self.seconds / 1e9

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per external byte actually moved."""
        if self.dram_bytes == 0.0:
            return 0.0
        return self.flops / self.dram_bytes

    def summary(self) -> dict[str, float]:
        """Flat dict of headline metrics (used by the bench harness)."""
        return {
            "gflops": self.gflops,
            "seconds": self.seconds,
            "dram_gb_per_s": self.dram_gb_per_s,
            "dram_bytes": float(self.dram_bytes),
            "arithmetic_intensity": self.arithmetic_intensity,
            "packing_seconds": self.packing_seconds,
        }


def degenerate_run(
    engine: str,
    machine: MachineSpec,
    m: int,
    n: int,
    k: int,
    dtype: np.dtype,
    *,
    cores: int,
    workers: int,
    backend: str = "numpy",
) -> GemmRun:
    """The result of a zero-volume multiply, BLAS-style.

    ``K == 0`` yields a zero-filled ``M x N`` C (an empty sum); ``M == 0``
    or ``N == 0`` an empty one. No packing, no schedule walk, no traffic —
    every counter and timing is zero, and the derived-rate properties on
    :class:`GemmRun` guard the resulting divisions.
    """
    return GemmRun(
        engine=engine,
        machine=machine,
        space=DegenerateSpace(m, n, k),
        cores=cores,
        counters=TrafficCounters(),
        time=ZERO_TIME,
        packing_seconds=0.0,
        c=np.zeros((m, n), dtype=dtype),
        workers=workers,
        backend=backend,
    )
