"""The GemmRun result type returned by every engine.

Bundles the numerical product with the traffic counters, the roofline time
breakdown, and the derived metrics the paper plots: computation throughput
in GFLOP/s (Figures 9-12 b-panels) and average observed DRAM bandwidth in
GB/s (Figures 10a/11a/12a). Packing time and traffic are included in both,
as in the paper's measurements (Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gemm.counters import TrafficCounters
from repro.machines.spec import MachineSpec
from repro.perfmodel.roofline import BlockTime
from repro.schedule.space import ComputationSpace


@dataclass(slots=True)
class GemmRun:
    """Everything one engine execution produced.

    Attributes
    ----------
    c:
        The numerical product (``None`` for analytic-only runs).
    engine:
        ``"cake"`` or ``"goto"``.
    machine:
        The machine the run was priced on.
    space:
        Problem extents.
    cores:
        Cores used.
    counters:
        Element-level traffic tallies.
    time:
        Summed roofline breakdown over all blocks (excludes packing).
    packing_seconds:
        Time charged to packing A and B.
    bound_blocks:
        How many blocks each resource bounded — the bottleneck histogram
        behind the paper's narrative for each platform.
    plan_summary:
        The tiling parameters the plan chose, for reporting.
    workers:
        Host threads the numeric executor ran with (1 for the inline
        serial path and for analytic-only runs). Distinct from ``cores``,
        which is the *modelled* core count the plan and pricing use.
    phase_seconds:
        Measured wall-clock of the numeric run's phases — ``pack``
        (packed-operand construction), ``compute`` (kernel time summed
        across workers), ``reduce`` (orchestrator barrier waits). ``None``
        for analytic-only runs. This is host wall time, *not* the modelled
        :attr:`seconds`; it exists so the execution engine can be profiled.
    """

    engine: str
    machine: MachineSpec
    space: ComputationSpace
    cores: int
    counters: TrafficCounters
    time: BlockTime
    packing_seconds: float
    bound_blocks: dict[str, int] = field(default_factory=dict)
    plan_summary: dict[str, float] = field(default_factory=dict)
    c: np.ndarray | None = None
    workers: int = 1
    phase_seconds: dict[str, float] | None = None

    @property
    def seconds(self) -> float:
        """Wall time: block execution plus packing."""
        return self.time.seconds + self.packing_seconds

    @property
    def flops(self) -> int:
        """Useful floating-point operations (``2 * M * N * K``)."""
        return self.space.flops

    @property
    def gflops(self) -> float:
        """Computation throughput, packing overhead included."""
        return self.flops / self.seconds / 1e9

    @property
    def dram_bytes(self) -> float:
        """Physical external traffic in bytes, packing included.

        Counted operand bytes scaled by the machine's
        ``external_traffic_factor`` — the quantity a hardware DRAM
        counter (and hence the paper's a-panels) reports.
        """
        return (
            self.counters.ext_total_bytes(self.machine.element_bytes)
            * self.machine.external_traffic_factor
        )

    @property
    def dram_gb_per_s(self) -> float:
        """Average observed DRAM bandwidth over the whole run."""
        return self.dram_bytes / self.seconds / 1e9

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per external byte actually moved."""
        return self.flops / self.dram_bytes

    def summary(self) -> dict[str, float]:
        """Flat dict of headline metrics (used by the bench harness)."""
        return {
            "gflops": self.gflops,
            "seconds": self.seconds,
            "dram_gb_per_s": self.dram_gb_per_s,
            "dram_bytes": float(self.dram_bytes),
            "arithmetic_intensity": self.arithmetic_intensity,
            "packing_seconds": self.packing_seconds,
        }
