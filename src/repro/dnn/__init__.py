"""DNN convolution workloads lowered to GEMM.

The paper's opening motivation: "most computations in the forward pass of
a convolutional neural network consist of one matrix multiplication per
convolutional layer". This package provides that workload — an im2col
lowering of 2-D convolution onto the library's GEMM engines, plus a small
zoo of realistic layer shapes — used by the ``dnn_inference`` example and
the packing-overhead bench (conv GEMMs are exactly the skewed shapes
Section 5.2.1 warns about).
"""

from repro.dnn.lowering import (
    col2im,
    conv2d_batched_via_gemm,
    conv2d_gemm_shape,
    conv2d_input_gradient,
    conv2d_via_gemm,
    conv2d_weight_gradient,
    im2col,
)
from repro.dnn.models import ConvLayer, resnet_like_layers, tiny_cnn_layers

__all__ = [
    "col2im",
    "conv2d_batched_via_gemm",
    "conv2d_gemm_shape",
    "conv2d_input_gradient",
    "conv2d_via_gemm",
    "conv2d_weight_gradient",
    "im2col",
    "ConvLayer",
    "resnet_like_layers",
    "tiny_cnn_layers",
]
