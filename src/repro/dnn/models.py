"""Layer-shape zoo for DNN-motivated workloads."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.lowering import conv2d_gemm_shape


@dataclass(frozen=True, slots=True)
class ConvLayer:
    """One convolutional layer's geometry."""

    name: str
    c_in: int
    h: int
    w: int
    c_out: int
    r: int
    s: int
    stride: int = 1

    def gemm_shape(self) -> tuple[int, int, int]:
        """The lowered GEMM's ``(M, N, K)``."""
        return conv2d_gemm_shape(
            self.c_in, self.h, self.w, self.c_out, self.r, self.s, self.stride
        )


def tiny_cnn_layers() -> list[ConvLayer]:
    """A small CNN (CIFAR-scale) — runnable end-to-end with numerics."""
    return [
        ConvLayer("conv1", c_in=3, h=32, w=32, c_out=32, r=3, s=3),
        ConvLayer("conv2", c_in=32, h=30, w=30, c_out=64, r=3, s=3),
        ConvLayer("conv3", c_in=64, h=14, w=14, c_out=128, r=3, s=3),
        ConvLayer("conv4", c_in=128, h=6, w=6, c_out=128, r=3, s=3),
    ]


def resnet_like_layers() -> list[ConvLayer]:
    """ImageNet-scale layer geometries (for analytic sweeps only).

    The shapes match a ResNet-ish progression: early layers lower to
    short-and-wide GEMMs (small M = C_out, huge N = H*W), late layers to
    more balanced ones — covering the skewed region of Figure 8.
    """
    return [
        ConvLayer("conv2_x", c_in=64, h=56, w=56, c_out=64, r=3, s=3),
        ConvLayer("conv3_x", c_in=128, h=28, w=28, c_out=128, r=3, s=3),
        ConvLayer("conv4_x", c_in=256, h=14, w=14, c_out=256, r=3, s=3),
        ConvLayer("conv5_x", c_in=512, h=7, w=7, c_out=512, r=3, s=3),
    ]
