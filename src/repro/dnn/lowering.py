"""im2col lowering: 2-D convolution as matrix multiplication.

A convolution of a ``(C_in, H, W)`` input with ``C_out`` filters of size
``(C_in, R, S)`` at stride ``s`` becomes::

    weights  (C_out  x  C_in*R*S)   @   patches  (C_in*R*S  x  H_out*W_out)

so the GEMM has ``M = C_out``, ``K = C_in*R*S``, ``N = H_out*W_out`` —
typically short-and-wide, the skewed regime where CAKE's shape adaptivity
matters (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import require_positive


def im2col(
    x: np.ndarray, r: int, s: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold ``(C, H, W)`` into patch columns ``(C*r*s, H_out*W_out)``.

    Vectorised with stride tricks (a view, not a copy, until the final
    reshape) per the HPC guide's "views, not copies" idiom. ``padding``
    zero-pads all four spatial borders first.
    """
    if x.ndim != 3:
        raise ValueError(f"input must be (C, H, W), got shape {x.shape}")
    require_positive("r", r)
    require_positive("s", s)
    require_positive("stride", stride)
    if padding < 0:
        raise ValueError(f"padding must be >= 0, got {padding}")
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    c, h, w = x.shape
    h_out = (h - r) // stride + 1
    w_out = (w - s) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise ValueError(
            f"kernel {r}x{s} with stride {stride} does not fit input {h}x{w}"
        )
    ch_s, h_s, w_s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(c, h_out, w_out, r, s),
        strides=(ch_s, h_s * stride, w_s * stride, h_s, w_s),
        writeable=False,
    )
    # (c, r, s) become the K axis; (h_out, w_out) the N axis.
    return (
        windows.transpose(0, 3, 4, 1, 2).reshape(c * r * s, h_out * w_out)
    )


def col2im(
    cols: np.ndarray,
    shape: tuple[int, int, int],
    r: int,
    s: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patch columns back.

    ``cols`` is ``(C*r*s, H_out*W_out)``; ``shape`` the original
    ``(C, H, W)``. Overlapping patch positions accumulate — exactly the
    operator the convolution input-gradient needs.
    """
    c, h, w = shape
    hp, wp = h + 2 * padding, w + 2 * padding
    h_out = (hp - r) // stride + 1
    w_out = (wp - s) // stride + 1
    if cols.shape != (c * r * s, h_out * w_out):
        raise ValueError(
            f"cols has shape {cols.shape}, expected {(c * r * s, h_out * w_out)}"
        )
    patches = cols.reshape(c, r, s, h_out, w_out)
    out = np.zeros((c, hp, wp), dtype=cols.dtype)
    for i in range(r):
        for j in range(s):
            out[:, i : i + stride * h_out : stride,
                j : j + stride * w_out : stride] += patches[:, i, j]
    if padding:
        out = out[:, padding:-padding, padding:-padding]
    return out


def conv2d_gemm_shape(
    c_in: int, h: int, w: int, c_out: int, r: int, s: int,
    stride: int = 1, padding: int = 0,
) -> tuple[int, int, int]:
    """The ``(M, N, K)`` of the lowered GEMM for one conv layer."""
    h_out = (h + 2 * padding - r) // stride + 1
    w_out = (w + 2 * padding - s) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise ValueError("kernel does not fit input")
    return c_out, h_out * w_out, c_in * r * s


@dataclass(frozen=True, slots=True)
class ConvResult:
    """Output feature map plus the GEMM run that produced it."""

    y: np.ndarray  # (C_out, H_out, W_out)
    run: object  # GemmRun


def _default_engine():
    from repro.gemm.cake import CakeGemm
    from repro.machines.presets import intel_i9_10900k

    return CakeGemm(intel_i9_10900k())


def conv2d_via_gemm(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
    engine=None,
) -> ConvResult:
    """Convolve ``x`` (C_in, H, W) with ``weights`` (C_out, C_in, R, S).

    ``engine`` is a GEMM engine with a ``multiply`` method (default: CAKE
    on the Intel preset). ``bias`` is an optional per-output-channel
    offset. The result is validated against a direct einsum convolution
    in tests.
    """
    if weights.ndim != 4:
        raise ValueError(f"weights must be (C_out, C_in, R, S), got {weights.shape}")
    c_out, c_in, r, s = weights.shape
    if x.shape[0] != c_in:
        raise ValueError(
            f"input has {x.shape[0]} channels, weights expect {c_in}"
        )
    if bias is not None and bias.shape != (c_out,):
        raise ValueError(f"bias must have shape ({c_out},), got {bias.shape}")
    engine = _default_engine() if engine is None else engine

    patches = np.ascontiguousarray(im2col(x, r, s, stride, padding))
    w_mat = weights.reshape(c_out, c_in * r * s)
    run = engine.multiply(w_mat, patches)
    h_out = (x.shape[1] + 2 * padding - r) // stride + 1
    w_out = (x.shape[2] + 2 * padding - s) // stride + 1
    y = run.c.reshape(c_out, h_out, w_out)
    if bias is not None:
        y = y + bias[:, None, None]
    return ConvResult(y=y, run=run)


def conv2d_batched_via_gemm(
    x_batch: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
    engine=None,
) -> ConvResult:
    """Convolve a whole batch ``(B, C_in, H, W)`` with one GEMM.

    Patch columns from all samples concatenate along N, so the lowered
    GEMM is ``C_out x (B * H_out * W_out) x (C_in*r*s)`` — batching
    widens N, pushing the skewed conv GEMM toward the arithmetic
    intensity sweet spot (larger problems are less memory-bound,
    Section 5.2.3). ``y`` comes back as ``(B, C_out, H_out, W_out)``.
    """
    if x_batch.ndim != 4:
        raise ValueError(
            f"batch must be (B, C_in, H, W), got shape {x_batch.shape}"
        )
    c_out, c_in, r, s = weights.shape
    if x_batch.shape[1] != c_in:
        raise ValueError(
            f"batch has {x_batch.shape[1]} channels, weights expect {c_in}"
        )
    if bias is not None and bias.shape != (c_out,):
        raise ValueError(f"bias must have shape ({c_out},), got {bias.shape}")
    engine = _default_engine() if engine is None else engine

    cols = np.hstack(
        [im2col(x, r, s, stride, padding) for x in x_batch]
    )
    w_mat = weights.reshape(c_out, c_in * r * s)
    run = engine.multiply(w_mat, np.ascontiguousarray(cols))
    batch = x_batch.shape[0]
    h_out = (x_batch.shape[2] + 2 * padding - r) // stride + 1
    w_out = (x_batch.shape[3] + 2 * padding - s) // stride + 1
    y = (
        run.c.reshape(c_out, batch, h_out, w_out).transpose(1, 0, 2, 3)
    )
    if bias is not None:
        y = y + bias[None, :, None, None]
    return ConvResult(y=y, run=run)


def conv2d_weight_gradient(
    x: np.ndarray,
    dy: np.ndarray,
    kernel_shape: tuple[int, int],
    *,
    stride: int = 1,
    padding: int = 0,
    engine=None,
) -> ConvResult:
    """Weight gradient of a convolution — one more GEMM.

    With ``dY`` of shape ``(C_out, H_out, W_out)``:
    ``dW = dY_mat @ patches(x).T``, a GEMM of shape
    ``C_out x (C_in*r*s) x (H_out*W_out)`` — short-and-fat, the skewed
    regime again. Returns ``ConvResult`` whose ``y`` holds ``dW``
    reshaped to ``(C_out, C_in, r, s)``.
    """
    r, s = kernel_shape
    c_in = x.shape[0]
    c_out = dy.shape[0]
    engine = _default_engine() if engine is None else engine
    patches = np.ascontiguousarray(im2col(x, r, s, stride, padding))
    dy_mat = dy.reshape(c_out, -1)
    if dy_mat.shape[1] != patches.shape[1]:
        raise ValueError(
            f"dY spatial size {dy_mat.shape[1]} does not match "
            f"{patches.shape[1]} patch positions"
        )
    run = engine.multiply(dy_mat, np.ascontiguousarray(patches.T))
    dw = run.c.reshape(c_out, c_in, r, s)
    return ConvResult(y=dw, run=run)


def conv2d_input_gradient(
    weights: np.ndarray,
    dy: np.ndarray,
    input_shape: tuple[int, int, int],
    *,
    stride: int = 1,
    padding: int = 0,
    engine=None,
) -> ConvResult:
    """Input gradient of a convolution: a GEMM plus :func:`col2im`.

    ``dX_cols = W_mat.T @ dY_mat`` (shape ``C_in*r*s x H_out*W_out``),
    scattered back onto the input grid by the im2col adjoint. Returns
    ``ConvResult`` whose ``y`` holds ``dX`` of ``input_shape``.
    """
    c_out, c_in, r, s = weights.shape
    engine = _default_engine() if engine is None else engine
    w_mat = weights.reshape(c_out, c_in * r * s)
    dy_mat = dy.reshape(c_out, -1)
    run = engine.multiply(np.ascontiguousarray(w_mat.T), dy_mat)
    dx = col2im(run.c, input_shape, r, s, stride, padding)
    return ConvResult(y=dx, run=run)
