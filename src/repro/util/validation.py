"""Small argument-validation helpers.

Centralising these keeps error messages uniform ("<name> must be ...") across
the whole library, which the test suite relies on.
"""

from __future__ import annotations

from collections.abc import Container
from typing import Any


def require_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def require_at_least(name: str, value: float, minimum: float) -> None:
    """Raise ``ValueError`` unless ``value >= minimum``."""
    if not value >= minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")


def require_in(name: str, value: Any, allowed: Container[Any]) -> None:
    """Raise ``ValueError`` unless ``value in allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
