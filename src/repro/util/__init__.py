"""Shared utilities: unit conversion, integer rounding, validation."""

from repro.util.rounding import (
    ceil_div,
    floor_to_multiple,
    round_to_multiple,
    split_even,
    split_length,
)
from repro.util.units import (
    BYTES_PER_KIB,
    BYTES_PER_MIB,
    BYTES_PER_GIB,
    bytes_to_gib,
    bytes_to_mib,
    elements_per_cycle_to_gb_per_s,
    gb_per_s_to_elements_per_cycle,
    gflops,
    mm_flops,
)
from repro.util.validation import (
    require_positive,
    require_nonnegative,
    require_at_least,
    require_in,
)

__all__ = [
    "ceil_div",
    "floor_to_multiple",
    "round_to_multiple",
    "split_even",
    "split_length",
    "BYTES_PER_KIB",
    "BYTES_PER_MIB",
    "BYTES_PER_GIB",
    "bytes_to_gib",
    "bytes_to_mib",
    "elements_per_cycle_to_gb_per_s",
    "gb_per_s_to_elements_per_cycle",
    "gflops",
    "mm_flops",
    "require_positive",
    "require_nonnegative",
    "require_at_least",
    "require_in",
]
