"""Unit conversions between the paper's model units and SI units.

The CAKE analysis (Sections 3-4) works in *model units*: one "cycle" is the
time a core takes to multiply an ``mr x kc`` tile by a ``kc x nr`` tile, and
bandwidth is measured in matrix *elements* per cycle. The evaluation
(Section 5) reports GFLOP/s and GB/s. These helpers convert between the two
given a machine clock frequency and element width, so that every figure
harness does the conversion exactly the same way.
"""

from __future__ import annotations

from repro.util.validation import require_nonnegative, require_positive

BYTES_PER_KIB = 1024
BYTES_PER_MIB = 1024**2
BYTES_PER_GIB = 1024**3

#: The paper evaluates single-precision GEMM (BLIS sgemm kernels).
FLOAT32_BYTES = 4


def bytes_to_mib(n_bytes: float) -> float:
    """Convert bytes to MiB."""
    require_nonnegative("n_bytes", n_bytes)
    return n_bytes / BYTES_PER_MIB


def bytes_to_gib(n_bytes: float) -> float:
    """Convert bytes to GiB."""
    require_nonnegative("n_bytes", n_bytes)
    return n_bytes / BYTES_PER_GIB


def mm_flops(m: int, n: int, k: int) -> int:
    """FLOPs of an ``m x k`` by ``k x n`` matrix multiplication.

    Uses the standard 2*M*N*K convention (one multiply + one add per MAC).
    """
    require_positive("m", m)
    require_positive("n", n)
    require_positive("k", k)
    return 2 * m * n * k


def gflops(flops: float, seconds: float) -> float:
    """Throughput in GFLOP/s given work and wall time."""
    require_nonnegative("flops", flops)
    require_positive("seconds", seconds)
    return flops / seconds / 1e9


def elements_per_cycle_to_gb_per_s(
    elements_per_cycle: float,
    clock_hz: float,
    element_bytes: int = FLOAT32_BYTES,
) -> float:
    """Convert a model bandwidth (elements/cycle) to GB/s.

    ``GB`` here is the decimal gigabyte (1e9 bytes), matching how DRAM
    bandwidth is quoted in Table 2 of the paper.
    """
    require_nonnegative("elements_per_cycle", elements_per_cycle)
    require_positive("clock_hz", clock_hz)
    require_positive("element_bytes", element_bytes)
    return elements_per_cycle * clock_hz * element_bytes / 1e9


def gb_per_s_to_elements_per_cycle(
    gb_per_s: float,
    clock_hz: float,
    element_bytes: int = FLOAT32_BYTES,
) -> float:
    """Convert a DRAM bandwidth in GB/s to model elements/cycle."""
    require_nonnegative("gb_per_s", gb_per_s)
    require_positive("clock_hz", clock_hz)
    require_positive("element_bytes", element_bytes)
    return gb_per_s * 1e9 / (clock_hz * element_bytes)
