"""Integer rounding helpers used by tilers and partitioners.

These are deliberately tiny, total functions: every partitioning decision in
the library funnels through them so that edge behaviour (remainder blocks,
dimensions smaller than one tile) is defined in exactly one place.
"""

from __future__ import annotations

from repro.util.validation import require_positive


def ceil_div(numerator: int, denominator: int) -> int:
    """Return ``ceil(numerator / denominator)`` for non-negative numerator.

    >>> ceil_div(10, 3)
    4
    >>> ceil_div(9, 3)
    3
    >>> ceil_div(0, 3)
    0
    """
    require_positive("denominator", denominator)
    if numerator < 0:
        raise ValueError(f"numerator must be >= 0, got {numerator}")
    return -(-numerator // denominator)


def round_to_multiple(value: int, multiple: int) -> int:
    """Round ``value`` *up* to the nearest multiple of ``multiple``.

    >>> round_to_multiple(10, 4)
    12
    >>> round_to_multiple(12, 4)
    12
    """
    return ceil_div(value, multiple) * multiple


def floor_to_multiple(value: int, multiple: int) -> int:
    """Round ``value`` *down* to the nearest multiple of ``multiple``.

    Unlike :func:`round_to_multiple` this never returns 0 for a positive
    ``value`` smaller than ``multiple``; it clamps to ``multiple`` instead,
    because a zero-sized tile is never a valid partitioning outcome.

    >>> floor_to_multiple(10, 4)
    8
    >>> floor_to_multiple(3, 4)
    4
    """
    require_positive("value", value)
    require_positive("multiple", multiple)
    return max((value // multiple) * multiple, multiple)


def split_even(total: int, parts: int) -> list[int]:
    """Split ``total`` into exactly ``parts`` balanced chunks.

    Chunk sizes differ by at most one and sum to ``total``; the larger
    chunks come first. Requires ``parts <= total`` so every chunk is
    non-empty — this is the partitioner behind the process-shard grid,
    where an empty shard would be a wasted worker.

    >>> split_even(10, 3)
    [4, 3, 3]
    >>> split_even(8, 4)
    [2, 2, 2, 2]
    """
    require_positive("total", total)
    require_positive("parts", parts)
    if parts > total:
        raise ValueError(
            f"cannot split {total} into {parts} non-empty parts"
        )
    base, rem = divmod(total, parts)
    return [base + 1] * rem + [base] * (parts - rem)


def split_length(total: int, chunk: int) -> list[int]:
    """Split ``total`` into consecutive chunks of size ``chunk``.

    The final chunk carries the remainder, so the sum of the returned sizes
    is exactly ``total``. Used to enumerate block extents along one matrix
    dimension, including the ragged edge.

    >>> split_length(10, 4)
    [4, 4, 2]
    >>> split_length(8, 4)
    [4, 4]
    """
    require_positive("total", total)
    require_positive("chunk", chunk)
    full, rem = divmod(total, chunk)
    sizes = [chunk] * full
    if rem:
        sizes.append(rem)
    return sizes
