"""Blocked packing of A and B operands.

Both engines pack the same way at this granularity (the difference between
CAKE and GOTO is block *shape*, not packing mechanics):

* ``A`` is cut along M into strips of ``mc`` rows and along K into panels
  of ``kc`` columns; each ``mc x kc`` sub-block is copied contiguously
  (C-order) so a core's resident A block is one dense array.
* ``B`` is cut along K into ``kc``-row panels and along N into panels of
  the engine's N-block width; each ``kc x n_block`` panel is contiguous.

The packed structures expose ``block(i, j)`` views so executors never
re-slice the original operands — matching the guide's "views, not copies"
idiom after the single packing copy.

Two implementations produce bit-identical buffers:

* The **vectorized** default builds at most four large block-major
  buffers (uniform interior, ragged right edge, ragged bottom edge,
  corner) with one strided ``np.copyto`` each; individual blocks are
  C-contiguous views into those buffers. Because the copy source is a
  stride-tricks view of the original operand, any input layout —
  F-ordered, transposed, or otherwise non-contiguous — is packed with
  exactly **one** data copy (no contiguous staging copy first).
* The **loop oracle** (``exact=True``) is the original nested-Python-loop
  packer: one ``np.ascontiguousarray`` per block. It exists as the
  ground truth the vectorized path is hypothesis-tested against, and as
  the ``exact_pack=True`` escape hatch on the engines.

Buffers can come from a :class:`repro.packing.pool.BufferPool` so service
loops reuse packed storage across calls instead of reallocating.

ABFT checksums
--------------

With ``checksums=True`` each packed block additionally carries its ABFT
checksum vector, computed at pack time while the block is cache-hot:

* A blocks get **column** checksums (sum over rows — length ``kc``),
* B panels get **row** checksums (sum over columns — length ``kc``),
* both also get **magnitude** sums — ``|block|`` reduced along each axis
  — which the verifier turns into tolerance bounds without rescanning
  the operands at check time.

All of a matrix's checksum and magnitude vectors live in flat pool-leased
buffers (returned with the block buffers by ``release_to``), filled in
place with ``np.sum(..., out=view)``. Computing them here rather than at
verify time is what makes verification cheap: a B panel's checksum is
reused by every block that touches the panel, mirroring how CAKE reuses
the panel itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.packing.pool import BufferPool
from repro.util import require_positive, split_length


@dataclass(frozen=True)
class PackedA:
    """A packed into ``mc x kc`` sub-blocks.

    ``blocks[si][ki]`` is the contiguous copy of A rows
    ``si*mc:(si+1)*mc`` and columns ``ki*kc:(ki+1)*kc`` (ragged at the
    high edges).
    """

    blocks: list[list[np.ndarray]]
    mc: int
    kc: int
    #: Backing buffers (vectorized path only) — handed back to the buffer
    #: pool via :meth:`release_to` when the run that leased them is done.
    buffers: tuple[np.ndarray, ...] = field(default=(), repr=False)
    #: Per-block ABFT column checksums (``checksums=True`` packs only):
    #: ``checksums[si][ki]`` is ``blocks[si][ki].sum(axis=0)``.
    checksums: list[list[np.ndarray]] | None = field(default=None, repr=False)
    #: Per-block absolute-value magnitude sums (``checksums=True`` packs
    #: only): ``magnitudes[si][ki]`` is the pair
    #: ``(|block|.sum(axis=0), |block|.sum(axis=1))`` — the tolerance-band
    #: material the verifier reads instead of re-scanning ``|A|``.
    magnitudes: list[list[tuple[np.ndarray, np.ndarray]]] | None = field(
        default=None, repr=False
    )
    #: The backing-buffer decomposition of a vectorized pack (``None``
    #: for the loop oracle) — what the sharded executor ships to worker
    #: processes so they can rebuild this exact block grid over
    #: shared-memory segments (:func:`grid_views`).
    parts: "GridParts | None" = field(default=None, repr=False)

    @property
    def strips(self) -> int:
        """Number of mc-row strips along M."""
        return len(self.blocks)

    @property
    def k_panels(self) -> int:
        """Number of kc-column panels along K."""
        return len(self.blocks[0])

    @property
    def elements(self) -> int:
        """Total packed elements (equals the source matrix's size)."""
        return sum(b.size for row in self.blocks for b in row)

    @property
    def checksum_elements(self) -> int:
        """Total checksum + magnitude elements carried (0 unless
        checksummed)."""
        if self.checksums is None:
            return 0
        total = sum(v.size for row in self.checksums for v in row)
        if self.magnitudes is not None:
            total += sum(
                a.size + b.size for row in self.magnitudes for a, b in row
            )
        return total

    def block(self, strip: int, k_panel: int) -> np.ndarray:
        """The contiguous ``mc x kc`` sub-block at (strip, k_panel)."""
        return self.blocks[strip][k_panel]

    def column(
        self, k_panel: int, *, pool: BufferPool | None = None
    ) -> np.ndarray:
        """One contiguous operand spanning *every* strip at ``k_panel``.

        The group-contiguous view whole-group backends multiply: all
        ``mc``-row strips of the matrix at this K panel, stacked in
        strip order as a single C-contiguous ``(M, kc)`` array. With a
        single strip the packed block itself is returned (zero-copy —
        the caller must not release it to a pool); with several, a
        fresh (or pool-leased) buffer is filled with one concatenate.
        """
        parts = [row[k_panel] for row in self.blocks]
        if len(parts) == 1:
            return parts[0]
        rows = sum(part.shape[0] for part in parts)
        lease = pool.lease if pool is not None else np.empty
        buf = lease((rows, parts[0].shape[1]), parts[0].dtype)
        np.concatenate(parts, axis=0, out=buf)
        return buf

    def checksum(self, strip: int, k_panel: int) -> np.ndarray:
        """The block's pack-time column checksum (length = block cols)."""
        if self.checksums is None:
            raise ValueError("packed without checksums=True")
        return self.checksums[strip][k_panel]

    def magnitude(self, strip: int, k_panel: int) -> tuple[np.ndarray, np.ndarray]:
        """The block's ``(|.|.sum(axis=0), |.|.sum(axis=1))`` pair."""
        if self.magnitudes is None:
            raise ValueError("packed without checksums=True")
        return self.magnitudes[strip][k_panel]

    def release_to(self, pool: BufferPool | None) -> None:
        """Return backing buffers to ``pool`` (no-op without one)."""
        if pool is not None and self.buffers:
            pool.release(*self.buffers)


@dataclass(frozen=True)
class PackedB:
    """B packed into ``kc x n_block`` panels.

    ``panels[ki][ni]`` is the contiguous copy of B rows
    ``ki*kc:(ki+1)*kc`` and columns ``ni*n_block:(ni+1)*n_block``.
    """

    panels: list[list[np.ndarray]]
    kc: int
    n_block: int
    buffers: tuple[np.ndarray, ...] = field(default=(), repr=False)
    #: Per-panel ABFT row checksums (``checksums=True`` packs only):
    #: ``checksums[ki][ni]`` is ``panels[ki][ni].sum(axis=1)``.
    checksums: list[list[np.ndarray]] | None = field(default=None, repr=False)
    #: Per-panel absolute-value magnitude sums, same layout as
    #: :attr:`PackedA.magnitudes`: ``(|panel|.sum(axis=0),
    #: |panel|.sum(axis=1))``.
    magnitudes: list[list[tuple[np.ndarray, np.ndarray]]] | None = field(
        default=None, repr=False
    )
    #: Backing-buffer decomposition, as on :attr:`PackedA.parts`.
    parts: "GridParts | None" = field(default=None, repr=False)

    @property
    def k_panels(self) -> int:
        """Number of kc-row panels along K."""
        return len(self.panels)

    @property
    def n_panels(self) -> int:
        """Number of n_block-column panels along N."""
        return len(self.panels[0])

    @property
    def elements(self) -> int:
        """Total packed elements (equals the source matrix's size)."""
        return sum(p.size for row in self.panels for p in row)

    @property
    def checksum_elements(self) -> int:
        """Total checksum + magnitude elements carried (0 unless
        checksummed)."""
        if self.checksums is None:
            return 0
        total = sum(v.size for row in self.checksums for v in row)
        if self.magnitudes is not None:
            total += sum(
                a.size + b.size for row in self.magnitudes for a, b in row
            )
        return total

    def panel(self, k_panel: int, n_panel: int) -> np.ndarray:
        """The contiguous ``kc x n_block`` panel at (k_panel, n_panel)."""
        return self.panels[k_panel][n_panel]

    def checksum(self, k_panel: int, n_panel: int) -> np.ndarray:
        """The panel's pack-time row checksum (length = panel rows)."""
        if self.checksums is None:
            raise ValueError("packed without checksums=True")
        return self.checksums[k_panel][n_panel]

    def magnitude(self, k_panel: int, n_panel: int) -> tuple[np.ndarray, np.ndarray]:
        """The panel's ``(|.|.sum(axis=0), |.|.sum(axis=1))`` pair."""
        if self.magnitudes is None:
            raise ValueError("packed without checksums=True")
        return self.magnitudes[k_panel][n_panel]

    def release_to(self, pool: BufferPool | None) -> None:
        """Return backing buffers to ``pool`` (no-op without one)."""
        if pool is not None and self.buffers:
            pool.release(*self.buffers)


def pack_a(
    a: np.ndarray,
    mc: int,
    kc: int,
    *,
    pool: BufferPool | None = None,
    exact: bool = False,
    checksums: bool = False,
) -> PackedA:
    """Pack matrix ``a`` into contiguous ``mc x kc`` sub-blocks.

    ``exact=True`` routes through the per-block loop oracle (bit-identical
    output, no pooling); the default builds the same blocks with a few
    large strided copies. ``checksums=True`` additionally computes each
    block's ABFT column checksum (``block.sum(axis=0)``) at pack time.
    """
    _check_matrix("a", a)
    require_positive("mc", mc)
    require_positive("kc", kc)
    if exact:
        blocks = _pack_grid_loop(a, mc, kc)
        cs = mags = None
        if checksums:
            cs, mags, _, _ = _checksum_grids(blocks, 0, None)
        return PackedA(blocks=blocks, mc=mc, kc=kc, checksums=cs, magnitudes=mags)
    blocks, buffers, parts = _pack_grid(a, mc, kc, pool)
    cs = mags = None
    if checksums:
        cs, mags, held = _checksum_grids_fast(blocks, parts, 0, pool)
        buffers = buffers + held
    return PackedA(
        blocks=blocks, mc=mc, kc=kc, buffers=buffers,
        checksums=cs, magnitudes=mags, parts=parts,
    )


def pack_b(
    b: np.ndarray,
    kc: int,
    n_block: int,
    *,
    pool: BufferPool | None = None,
    exact: bool = False,
    checksums: bool = False,
) -> PackedB:
    """Pack matrix ``b`` into contiguous ``kc x n_block`` panels.

    Same contract as :func:`pack_a` (B's rows are cut by ``kc``, its
    columns by ``n_block``; checksums are **row** sums, ``panel.sum(axis=1)``).
    """
    _check_matrix("b", b)
    require_positive("kc", kc)
    require_positive("n_block", n_block)
    if exact:
        panels = _pack_grid_loop(b, kc, n_block)
        cs = mags = None
        if checksums:
            cs, mags, _, _ = _checksum_grids(panels, 1, None)
        return PackedB(
            panels=panels, kc=kc, n_block=n_block, checksums=cs, magnitudes=mags
        )
    panels, buffers, parts = _pack_grid(b, kc, n_block, pool)
    cs = mags = None
    if checksums:
        cs, mags, held = _checksum_grids_fast(panels, parts, 1, pool)
        buffers = buffers + held
    return PackedB(
        panels=panels, kc=kc, n_block=n_block, buffers=buffers,
        checksums=cs, magnitudes=mags, parts=parts,
    )


# Engine-specific aliases: CAKE and GOTO pack identically at this
# granularity but with differently-derived tile extents, so the executors
# read better calling their own names.
pack_a_cake = pack_a
pack_a_goto = pack_a
pack_b_cake = pack_b
pack_b_goto = pack_b


# -- vectorized packing -------------------------------------------------------


class GridParts(NamedTuple):
    """The <= 4 backing buffers of a vectorized pack, plus grid extents.

    ``main`` holds the uniform interior blocks block-major; ``right``,
    ``bottom`` and ``corner`` the ragged edges. ``r_full``/``c_full``
    count full-size block rows/columns — the grid coordinates where the
    edge buffers start.

    This record is the *transportable* form of a vectorized pack: the
    sharded executor ships each part's shared-memory segment to worker
    processes, which rebuild the identical block-view grid with
    :func:`grid_views` — same buffers, same strides, same bits.
    """

    main: np.ndarray | None
    right: np.ndarray | None
    bottom: np.ndarray | None
    corner: np.ndarray | None
    r_full: int
    c_full: int


def grid_views(parts: GridParts) -> list[list[np.ndarray]]:
    """The block-view grid over a vectorized pack's backing buffers.

    ``grid[i][j]`` is the C-contiguous view of block ``(i, j)`` — interior
    blocks index into ``main``, ragged edges into ``right``/``bottom``/
    ``corner``. Pure view arithmetic over ``parts``: calling it in another
    process on attached copies of the same segments yields views over the
    same bytes, which is what makes shard workers' packed operands
    bit-identical to the parent's.
    """
    main, right, bottom, corner, r_full, c_full = parts
    nb_r = r_full + (1 if bottom is not None or corner is not None else 0)
    nb_c = c_full + (1 if right is not None or corner is not None else 0)
    grid: list[list[np.ndarray]] = []
    for i in range(nb_r):
        row: list[np.ndarray] = []
        for j in range(nb_c):
            if i < r_full and j < c_full:
                row.append(main[i, j])
            elif i < r_full:
                row.append(right[i])
            elif j < c_full:
                row.append(bottom[j])
            else:
                row.append(corner)
        grid.append(row)
    return grid


def _pack_grid(
    x: np.ndarray,
    row_chunk: int,
    col_chunk: int,
    pool: BufferPool | None,
) -> tuple[list[list[np.ndarray]], tuple[np.ndarray, ...], GridParts]:
    """Blocked copy of ``x`` as C-contiguous views into <= 4 big buffers.

    The interior blocks (all full ``row_chunk x col_chunk``) land in one
    block-major 4-D buffer with a single strided copy; the ragged right
    edge, bottom edge and corner each get their own buffer. The copy
    *source* is a zero-copy strided view of ``x``, so the data moves
    exactly once regardless of the input's memory layout.
    """
    rows, cols = x.shape
    rc = min(row_chunk, rows)
    cc = min(col_chunk, cols)
    r_full, r_rem = divmod(rows, rc)
    c_full, c_rem = divmod(cols, cc)
    sr, sc = x.strides

    lease = pool.lease if pool is not None else np.empty
    buffers: list[np.ndarray] = []

    main = right = bottom = corner = None
    if r_full and c_full:
        main = lease((r_full, c_full, rc, cc), x.dtype)
        np.copyto(
            main,
            as_strided(
                x,
                shape=(r_full, c_full, rc, cc),
                strides=(rc * sr, cc * sc, sr, sc),
            ),
        )
        buffers.append(main)
    if r_full and c_rem:
        edge = x[:, c_full * cc :]
        right = lease((r_full, rc, c_rem), x.dtype)
        np.copyto(
            right,
            as_strided(edge, shape=(r_full, rc, c_rem), strides=(rc * sr, sr, sc)),
        )
        buffers.append(right)
    if r_rem and c_full:
        edge = x[r_full * rc :, :]
        bottom = lease((c_full, r_rem, cc), x.dtype)
        np.copyto(
            bottom,
            as_strided(edge, shape=(c_full, r_rem, cc), strides=(cc * sc, sr, sc)),
        )
        buffers.append(bottom)
    if r_rem and c_rem:
        corner = lease((r_rem, c_rem), x.dtype)
        np.copyto(corner, x[r_full * rc :, c_full * cc :])
        buffers.append(corner)

    parts = GridParts(main, right, bottom, corner, r_full, c_full)
    return grid_views(parts), tuple(buffers), parts


# -- ABFT checksum vectors ----------------------------------------------------


def _checksum_grids(
    grid: list[list[np.ndarray]],
    axis: int,
    pool: BufferPool | None,
) -> tuple[
    list[list[np.ndarray]],
    list[list[tuple[np.ndarray, np.ndarray]]],
    np.ndarray,
    np.ndarray,
]:
    """Per-block checksum and magnitude vectors, in flat leased buffers.

    ``axis=0`` sums over rows (A's column checksums), ``axis=1`` over
    columns (B's row checksums). Alongside each checksum, every block
    yields its magnitude pair ``(|blk|.sum(axis=0), |blk|.sum(axis=1))``
    — the verifier's tolerance-band material, from which a group
    update's column/row magnitude bounds derive with O(m + n) vector
    arithmetic, so the verify path never rescans ``|A|`` or ``|B|``.

    All vectors are views into two 1-D buffers — two pool leases for the
    whole matrix — filled in place with ``np.sum(..., out=view)``. Both
    reductions of a block run back to back while it is cache-resident,
    so the matrix streams from DRAM once, not twice.
    """
    cs_total = sum(blk.shape[1 - axis] for row in grid for blk in row)
    mag_total = sum(blk.shape[0] + blk.shape[1] for row in grid for blk in row)
    lease = pool.lease if pool is not None else np.empty
    cs_buf = lease((cs_total,), grid[0][0].dtype)
    mag_buf = lease((mag_total,), grid[0][0].dtype)
    scratch: dict[tuple[int, int], np.ndarray] = {}  # <= 4 block shapes
    cs_out: list[list[np.ndarray]] = []
    mag_out: list[list[tuple[np.ndarray, np.ndarray]]] = []
    cs_off = mag_off = 0
    for row in grid:
        cs_vecs: list[np.ndarray] = []
        mag_pairs: list[tuple[np.ndarray, np.ndarray]] = []
        for blk in row:
            view = cs_buf[cs_off : cs_off + blk.shape[1 - axis]]
            np.sum(blk, axis=axis, out=view)
            cs_vecs.append(view)
            cs_off += view.size
            ab = scratch.get(blk.shape)
            if ab is None or ab.dtype != blk.dtype:
                ab = lease(blk.shape, blk.dtype)
                scratch[blk.shape] = ab
            np.abs(blk, out=ab)
            cols = mag_buf[mag_off : mag_off + blk.shape[1]]
            np.sum(ab, axis=0, out=cols)
            mag_off += cols.size
            rows_v = mag_buf[mag_off : mag_off + blk.shape[0]]
            np.sum(ab, axis=1, out=rows_v)
            mag_off += rows_v.size
            mag_pairs.append((cols, rows_v))
        cs_out.append(cs_vecs)
        mag_out.append(mag_pairs)
    if pool is not None:
        pool.release(*scratch.values())
    return cs_out, mag_out, cs_buf, mag_buf


def _checksum_grids_fast(
    grid: list[list[np.ndarray]],
    parts: GridParts,
    axis: int,
    pool: BufferPool | None,
) -> tuple[
    list[list[np.ndarray]],
    list[list[tuple[np.ndarray, np.ndarray]]],
    tuple[np.ndarray, ...],
]:
    """Checksums + magnitudes as whole-buffer reductions.

    Same outputs as :func:`_checksum_grids`, but each backing buffer of
    the vectorized pack is reduced with one numpy call per result
    (checksum, ``|.|`` per-column sums, ``|.|`` per-row sums) — the
    matrix streams once and no python loop runs per block. Bit-identical
    to the per-block path: each block's reduction covers the same
    contiguous elements in the same pairwise order.
    """
    lease = pool.lease if pool is not None else np.empty
    held: list[np.ndarray] = []

    def reduce_part(arr: np.ndarray, ra: int, ca: int):
        ab = lease(arr.shape, arr.dtype)
        np.abs(arr, out=ab)
        outs = []
        for src, ax in ((arr, ra if axis == 0 else ca), (ab, ra), (ab, ca)):
            out = lease(src.shape[:ax] + src.shape[ax + 1 :], arr.dtype)
            np.sum(src, axis=ax, out=out)
            outs.append(out)
            held.append(out)
        if pool is not None:
            pool.release(ab)
        return outs

    nb_c = len(grid[0])
    cs_grid: list[list[np.ndarray]] = [[None] * nb_c for _ in grid]
    mag_grid: list[list[tuple[np.ndarray, np.ndarray]]] = [
        [None] * nb_c for _ in grid
    ]
    rf, cf = parts.r_full, parts.c_full
    if parts.main is not None:
        cs, m0, m1 = reduce_part(parts.main, 2, 3)
        for i in range(rf):
            for j in range(cf):
                cs_grid[i][j] = cs[i, j]
                mag_grid[i][j] = (m0[i, j], m1[i, j])
    if parts.right is not None:
        cs, m0, m1 = reduce_part(parts.right, 1, 2)
        for i in range(rf):
            cs_grid[i][cf] = cs[i]
            mag_grid[i][cf] = (m0[i], m1[i])
    if parts.bottom is not None:
        cs, m0, m1 = reduce_part(parts.bottom, 1, 2)
        for j in range(cf):
            cs_grid[rf][j] = cs[j]
            mag_grid[rf][j] = (m0[j], m1[j])
    if parts.corner is not None:
        cs, m0, m1 = reduce_part(parts.corner, 0, 1)
        cs_grid[rf][cf] = cs
        mag_grid[rf][cf] = (m0, m1)
    return cs_grid, mag_grid, tuple(held)


# -- the loop oracle ----------------------------------------------------------


def _pack_grid_loop(
    x: np.ndarray, row_chunk: int, col_chunk: int
) -> list[list[np.ndarray]]:
    """The original nested-loop packer: one contiguous copy per block."""
    rows, cols = x.shape
    r_sizes = split_length(rows, min(row_chunk, rows))
    c_sizes = split_length(cols, min(col_chunk, cols))
    grid: list[list[np.ndarray]] = []
    r0 = 0
    for rs in r_sizes:
        row: list[np.ndarray] = []
        c0 = 0
        for cs in c_sizes:
            row.append(np.ascontiguousarray(x[r0 : r0 + rs, c0 : c0 + cs]))
            c0 += cs
        grid.append(row)
        r0 += rs
    return grid


def _check_matrix(name: str, x: np.ndarray) -> None:
    if not isinstance(x, np.ndarray) or x.ndim != 2:
        raise TypeError(f"{name} must be a 2-D numpy array, got {type(x).__name__}")
    if x.size == 0:
        raise ValueError(f"{name} must be non-empty")
