"""Blocked packing of A and B operands.

Both engines pack the same way at this granularity (the difference between
CAKE and GOTO is block *shape*, not packing mechanics):

* ``A`` is cut along M into strips of ``mc`` rows and along K into panels
  of ``kc`` columns; each ``mc x kc`` sub-block is copied contiguously
  (C-order) so a core's resident A block is one dense array.
* ``B`` is cut along K into ``kc``-row panels and along N into panels of
  the engine's N-block width; each ``kc x n_block`` panel is contiguous.

The packed structures expose ``block(i, j)`` views so executors never
re-slice the original operands — matching the guide's "views, not copies"
idiom after the single packing copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import require_positive, split_length


@dataclass(frozen=True)
class PackedA:
    """A packed into ``mc x kc`` sub-blocks.

    ``blocks[si][ki]`` is the contiguous copy of A rows
    ``si*mc:(si+1)*mc`` and columns ``ki*kc:(ki+1)*kc`` (ragged at the
    high edges).
    """

    blocks: list[list[np.ndarray]]
    mc: int
    kc: int

    @property
    def strips(self) -> int:
        """Number of mc-row strips along M."""
        return len(self.blocks)

    @property
    def k_panels(self) -> int:
        """Number of kc-column panels along K."""
        return len(self.blocks[0])

    @property
    def elements(self) -> int:
        """Total packed elements (equals the source matrix's size)."""
        return sum(b.size for row in self.blocks for b in row)

    def block(self, strip: int, k_panel: int) -> np.ndarray:
        """The contiguous ``mc x kc`` sub-block at (strip, k_panel)."""
        return self.blocks[strip][k_panel]


@dataclass(frozen=True)
class PackedB:
    """B packed into ``kc x n_block`` panels.

    ``panels[ki][ni]`` is the contiguous copy of B rows
    ``ki*kc:(ki+1)*kc`` and columns ``ni*n_block:(ni+1)*n_block``.
    """

    panels: list[list[np.ndarray]]
    kc: int
    n_block: int

    @property
    def k_panels(self) -> int:
        """Number of kc-row panels along K."""
        return len(self.panels)

    @property
    def n_panels(self) -> int:
        """Number of n_block-column panels along N."""
        return len(self.panels[0])

    @property
    def elements(self) -> int:
        """Total packed elements (equals the source matrix's size)."""
        return sum(p.size for row in self.panels for p in row)

    def panel(self, k_panel: int, n_panel: int) -> np.ndarray:
        """The contiguous ``kc x n_block`` panel at (k_panel, n_panel)."""
        return self.panels[k_panel][n_panel]


def pack_a(a: np.ndarray, mc: int, kc: int) -> PackedA:
    """Pack matrix ``a`` into contiguous ``mc x kc`` sub-blocks."""
    _check_matrix("a", a)
    require_positive("mc", mc)
    require_positive("kc", kc)
    m, k = a.shape
    m_sizes = split_length(m, min(mc, m))
    k_sizes = split_length(k, min(kc, k))
    blocks: list[list[np.ndarray]] = []
    m0 = 0
    for ms in m_sizes:
        row: list[np.ndarray] = []
        k0 = 0
        for ks in k_sizes:
            row.append(np.ascontiguousarray(a[m0 : m0 + ms, k0 : k0 + ks]))
            k0 += ks
        blocks.append(row)
        m0 += ms
    return PackedA(blocks=blocks, mc=mc, kc=kc)


def pack_b(b: np.ndarray, kc: int, n_block: int) -> PackedB:
    """Pack matrix ``b`` into contiguous ``kc x n_block`` panels."""
    _check_matrix("b", b)
    require_positive("kc", kc)
    require_positive("n_block", n_block)
    k, n = b.shape
    k_sizes = split_length(k, min(kc, k))
    n_sizes = split_length(n, min(n_block, n))
    panels: list[list[np.ndarray]] = []
    k0 = 0
    for ks in k_sizes:
        row: list[np.ndarray] = []
        n0 = 0
        for ns in n_sizes:
            row.append(np.ascontiguousarray(b[k0 : k0 + ks, n0 : n0 + ns]))
            n0 += ns
        panels.append(row)
        k0 += ks
    return PackedB(panels=panels, kc=kc, n_block=n_block)


# Engine-specific aliases: CAKE and GOTO pack identically at this
# granularity but with differently-derived tile extents, so the executors
# read better calling their own names.
pack_a_cake = pack_a
pack_a_goto = pack_a
pack_b_cake = pack_b
pack_b_goto = pack_b


def _check_matrix(name: str, x: np.ndarray) -> None:
    if not isinstance(x, np.ndarray) or x.ndim != 2:
        raise TypeError(f"{name} must be a 2-D numpy array, got {type(x).__name__}")
    if x.size == 0:
        raise ValueError(f"{name} must be non-empty")
