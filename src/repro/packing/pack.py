"""Blocked packing of A and B operands.

Both engines pack the same way at this granularity (the difference between
CAKE and GOTO is block *shape*, not packing mechanics):

* ``A`` is cut along M into strips of ``mc`` rows and along K into panels
  of ``kc`` columns; each ``mc x kc`` sub-block is copied contiguously
  (C-order) so a core's resident A block is one dense array.
* ``B`` is cut along K into ``kc``-row panels and along N into panels of
  the engine's N-block width; each ``kc x n_block`` panel is contiguous.

The packed structures expose ``block(i, j)`` views so executors never
re-slice the original operands — matching the guide's "views, not copies"
idiom after the single packing copy.

Two implementations produce bit-identical buffers:

* The **vectorized** default builds at most four large block-major
  buffers (uniform interior, ragged right edge, ragged bottom edge,
  corner) with one strided ``np.copyto`` each; individual blocks are
  C-contiguous views into those buffers. Because the copy source is a
  stride-tricks view of the original operand, any input layout —
  F-ordered, transposed, or otherwise non-contiguous — is packed with
  exactly **one** data copy (no contiguous staging copy first).
* The **loop oracle** (``exact=True``) is the original nested-Python-loop
  packer: one ``np.ascontiguousarray`` per block. It exists as the
  ground truth the vectorized path is hypothesis-tested against, and as
  the ``exact_pack=True`` escape hatch on the engines.

Buffers can come from a :class:`repro.packing.pool.BufferPool` so service
loops reuse packed storage across calls instead of reallocating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.packing.pool import BufferPool
from repro.util import require_positive, split_length


@dataclass(frozen=True)
class PackedA:
    """A packed into ``mc x kc`` sub-blocks.

    ``blocks[si][ki]`` is the contiguous copy of A rows
    ``si*mc:(si+1)*mc`` and columns ``ki*kc:(ki+1)*kc`` (ragged at the
    high edges).
    """

    blocks: list[list[np.ndarray]]
    mc: int
    kc: int
    #: Backing buffers (vectorized path only) — handed back to the buffer
    #: pool via :meth:`release_to` when the run that leased them is done.
    buffers: tuple[np.ndarray, ...] = field(default=(), repr=False)

    @property
    def strips(self) -> int:
        """Number of mc-row strips along M."""
        return len(self.blocks)

    @property
    def k_panels(self) -> int:
        """Number of kc-column panels along K."""
        return len(self.blocks[0])

    @property
    def elements(self) -> int:
        """Total packed elements (equals the source matrix's size)."""
        return sum(b.size for row in self.blocks for b in row)

    def block(self, strip: int, k_panel: int) -> np.ndarray:
        """The contiguous ``mc x kc`` sub-block at (strip, k_panel)."""
        return self.blocks[strip][k_panel]

    def release_to(self, pool: BufferPool | None) -> None:
        """Return backing buffers to ``pool`` (no-op without one)."""
        if pool is not None and self.buffers:
            pool.release(*self.buffers)


@dataclass(frozen=True)
class PackedB:
    """B packed into ``kc x n_block`` panels.

    ``panels[ki][ni]`` is the contiguous copy of B rows
    ``ki*kc:(ki+1)*kc`` and columns ``ni*n_block:(ni+1)*n_block``.
    """

    panels: list[list[np.ndarray]]
    kc: int
    n_block: int
    buffers: tuple[np.ndarray, ...] = field(default=(), repr=False)

    @property
    def k_panels(self) -> int:
        """Number of kc-row panels along K."""
        return len(self.panels)

    @property
    def n_panels(self) -> int:
        """Number of n_block-column panels along N."""
        return len(self.panels[0])

    @property
    def elements(self) -> int:
        """Total packed elements (equals the source matrix's size)."""
        return sum(p.size for row in self.panels for p in row)

    def panel(self, k_panel: int, n_panel: int) -> np.ndarray:
        """The contiguous ``kc x n_block`` panel at (k_panel, n_panel)."""
        return self.panels[k_panel][n_panel]

    def release_to(self, pool: BufferPool | None) -> None:
        """Return backing buffers to ``pool`` (no-op without one)."""
        if pool is not None and self.buffers:
            pool.release(*self.buffers)


def pack_a(
    a: np.ndarray,
    mc: int,
    kc: int,
    *,
    pool: BufferPool | None = None,
    exact: bool = False,
) -> PackedA:
    """Pack matrix ``a`` into contiguous ``mc x kc`` sub-blocks.

    ``exact=True`` routes through the per-block loop oracle (bit-identical
    output, no pooling); the default builds the same blocks with a few
    large strided copies.
    """
    _check_matrix("a", a)
    require_positive("mc", mc)
    require_positive("kc", kc)
    if exact:
        return PackedA(blocks=_pack_grid_loop(a, mc, kc), mc=mc, kc=kc)
    blocks, buffers = _pack_grid(a, mc, kc, pool)
    return PackedA(blocks=blocks, mc=mc, kc=kc, buffers=buffers)


def pack_b(
    b: np.ndarray,
    kc: int,
    n_block: int,
    *,
    pool: BufferPool | None = None,
    exact: bool = False,
) -> PackedB:
    """Pack matrix ``b`` into contiguous ``kc x n_block`` panels.

    Same contract as :func:`pack_a` (B's rows are cut by ``kc``, its
    columns by ``n_block``).
    """
    _check_matrix("b", b)
    require_positive("kc", kc)
    require_positive("n_block", n_block)
    if exact:
        return PackedB(panels=_pack_grid_loop(b, kc, n_block), kc=kc, n_block=n_block)
    panels, buffers = _pack_grid(b, kc, n_block, pool)
    return PackedB(panels=panels, kc=kc, n_block=n_block, buffers=buffers)


# Engine-specific aliases: CAKE and GOTO pack identically at this
# granularity but with differently-derived tile extents, so the executors
# read better calling their own names.
pack_a_cake = pack_a
pack_a_goto = pack_a
pack_b_cake = pack_b
pack_b_goto = pack_b


# -- vectorized packing -------------------------------------------------------


def _pack_grid(
    x: np.ndarray,
    row_chunk: int,
    col_chunk: int,
    pool: BufferPool | None,
) -> tuple[list[list[np.ndarray]], tuple[np.ndarray, ...]]:
    """Blocked copy of ``x`` as C-contiguous views into <= 4 big buffers.

    The interior blocks (all full ``row_chunk x col_chunk``) land in one
    block-major 4-D buffer with a single strided copy; the ragged right
    edge, bottom edge and corner each get their own buffer. The copy
    *source* is a zero-copy strided view of ``x``, so the data moves
    exactly once regardless of the input's memory layout.
    """
    rows, cols = x.shape
    rc = min(row_chunk, rows)
    cc = min(col_chunk, cols)
    r_full, r_rem = divmod(rows, rc)
    c_full, c_rem = divmod(cols, cc)
    sr, sc = x.strides

    lease = pool.lease if pool is not None else np.empty
    buffers: list[np.ndarray] = []

    main = right = bottom = corner = None
    if r_full and c_full:
        main = lease((r_full, c_full, rc, cc), x.dtype)
        np.copyto(
            main,
            as_strided(
                x,
                shape=(r_full, c_full, rc, cc),
                strides=(rc * sr, cc * sc, sr, sc),
            ),
        )
        buffers.append(main)
    if r_full and c_rem:
        edge = x[:, c_full * cc :]
        right = lease((r_full, rc, c_rem), x.dtype)
        np.copyto(
            right,
            as_strided(edge, shape=(r_full, rc, c_rem), strides=(rc * sr, sr, sc)),
        )
        buffers.append(right)
    if r_rem and c_full:
        edge = x[r_full * rc :, :]
        bottom = lease((c_full, r_rem, cc), x.dtype)
        np.copyto(
            bottom,
            as_strided(edge, shape=(c_full, r_rem, cc), strides=(cc * sc, sr, sc)),
        )
        buffers.append(bottom)
    if r_rem and c_rem:
        corner = lease((r_rem, c_rem), x.dtype)
        np.copyto(corner, x[r_full * rc :, c_full * cc :])
        buffers.append(corner)

    nb_r = r_full + (1 if r_rem else 0)
    nb_c = c_full + (1 if c_rem else 0)
    grid: list[list[np.ndarray]] = []
    for i in range(nb_r):
        row: list[np.ndarray] = []
        for j in range(nb_c):
            if i < r_full and j < c_full:
                row.append(main[i, j])
            elif i < r_full:
                row.append(right[i])
            elif j < c_full:
                row.append(bottom[j])
            else:
                row.append(corner)
        grid.append(row)
    return grid, tuple(buffers)


# -- the loop oracle ----------------------------------------------------------


def _pack_grid_loop(
    x: np.ndarray, row_chunk: int, col_chunk: int
) -> list[list[np.ndarray]]:
    """The original nested-loop packer: one contiguous copy per block."""
    rows, cols = x.shape
    r_sizes = split_length(rows, min(row_chunk, rows))
    c_sizes = split_length(cols, min(col_chunk, cols))
    grid: list[list[np.ndarray]] = []
    r0 = 0
    for rs in r_sizes:
        row: list[np.ndarray] = []
        c0 = 0
        for cs in c_sizes:
            row.append(np.ascontiguousarray(x[r0 : r0 + rs, c0 : c0 + cs]))
            c0 += cs
        grid.append(row)
        r0 += rs
    return grid


def _check_matrix(name: str, x: np.ndarray) -> None:
    if not isinstance(x, np.ndarray) or x.ndim != 2:
        raise TypeError(f"{name} must be a 2-D numpy array, got {type(x).__name__}")
    if x.size == 0:
        raise ValueError(f"{name} must be non-empty")
