"""Operand packing into contiguous blocked buffers (Section 5.2.1).

GEMM libraries — CAKE included — copy their operands into contiguous
buffers laid out in the order the kernel will touch them, which minimises
cache evictions and prevents cache self-interference. Packing costs real
memory traffic (each packed element is read once and written once through
DRAM), and the paper includes that overhead in every measurement; for
skewed shapes it can be a significant fraction of total time.

:mod:`repro.packing.pack` builds the blocked buffers the executors consume;
:mod:`repro.packing.cost` charges for them.
"""

from repro.packing.pack import (
    PackedA,
    PackedB,
    pack_a,
    pack_a_cake,
    pack_a_goto,
    pack_b,
    pack_b_cake,
    pack_b_goto,
)
from repro.packing.pool import BufferPool
from repro.packing.cost import PackingCost, packing_cost

__all__ = [
    "BufferPool",
    "PackedA",
    "PackedB",
    "pack_a",
    "pack_a_cake",
    "pack_a_goto",
    "pack_b",
    "pack_b_cake",
    "pack_b_goto",
    "PackingCost",
    "packing_cost",
]
