"""A reusable buffer pool for packed operand storage.

Packing allocates a handful of large contiguous buffers per ``multiply()``
call (one per packed region — see :mod:`repro.packing.pack`). Service
workloads call ``multiply()`` in a loop with recurring shapes, so those
allocations are highly redundant; the pool lets an engine hand buffers
back after a run and lease them again on the next call instead of paying
``np.empty`` + page-fault cost every time.

Semantics are deliberately minimal:

* :meth:`BufferPool.lease` returns an **uninitialised** C-contiguous
  array of exactly the requested shape and dtype — a retained buffer if
  one matches, a fresh allocation otherwise. Leased buffers are popped
  from the pool under a lock, so concurrent leases never share storage
  (this is what makes one engine object safe to run from many threads).
* :meth:`BufferPool.release` returns buffers for reuse. The pool retains
  at most ``max_retained_bytes`` in total and evicts the
  least-recently-released buffers beyond that, so a single huge problem
  cannot pin its working set forever.

The pool never zeroes storage: packed buffers are always fully
overwritten by the pack copy before use, which tests assert indirectly by
checking packed buffers are bit-identical to the loop-packing oracle.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import NamedTuple

import numpy as np

#: Default retention cap: generous enough for the benchmark shapes
#: (a 1536^3 float64 problem packs ~38 MiB), small enough to never
#: matter on a laptop.
DEFAULT_MAX_RETAINED_BYTES = 256 * 1024 * 1024


class BufferPool:
    """Thread-safe pool of reusable C-contiguous ndarray buffers."""

    def __init__(self, max_retained_bytes: int = DEFAULT_MAX_RETAINED_BYTES):
        if max_retained_bytes < 0:
            raise ValueError(
                f"max_retained_bytes must be >= 0, got {max_retained_bytes}"
            )
        self.max_retained_bytes = max_retained_bytes
        self._lock = threading.Lock()
        # (shape, dtype.str) -> list of free buffers; OrderedDict gives
        # cheap least-recently-released eviction across keys.
        self._free: OrderedDict[tuple, list[np.ndarray]] = OrderedDict()
        self._retained_bytes = 0
        self.hits = 0
        self.misses = 0

    def _key(self, shape: tuple[int, ...], dtype: np.dtype) -> tuple:
        return (tuple(shape), np.dtype(dtype).str)

    def lease(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialised C-contiguous array of ``shape``/``dtype``.

        Zero-element requests short-circuit: an empty array costs nothing
        to allocate, so it never takes the lock, never counts toward
        hit/miss stats, and is never retained by :meth:`release`.
        """
        if any(extent == 0 for extent in shape):
            return np.empty(shape, dtype=dtype)
        key = self._key(shape, dtype)
        with self._lock:
            bucket = self._free.get(key)
            if bucket:
                buf = bucket.pop()
                if not bucket:
                    del self._free[key]
                self._retained_bytes -= buf.nbytes
                self.hits += 1
                return buf
            self.misses += 1
        return self._allocate(shape, dtype)

    def _allocate(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Allocate a fresh buffer on a pool miss (subclass seam).

        The zero-element short-circuit and the lease/release bookkeeping
        live in :meth:`lease`; subclasses only change *where* the bytes
        come from (:class:`SharedBufferPool` puts them in shared-memory
        segments). Runs outside the pool lock.
        """
        return np.empty(shape, dtype=dtype)

    def release(self, *buffers: np.ndarray) -> None:
        """Return buffers to the pool (caller must drop its references)."""
        with self._lock:
            for buf in buffers:
                if buf.nbytes > self.max_retained_bytes or buf.size == 0:
                    continue  # too big to retain / nothing to reuse
                key = self._key(buf.shape, buf.dtype)
                self._free.setdefault(key, []).append(buf)
                self._free.move_to_end(key)
                self._retained_bytes += buf.nbytes
            while self._retained_bytes > self.max_retained_bytes and self._free:
                key, bucket = next(iter(self._free.items()))
                victim = bucket.pop(0)
                if not bucket:
                    del self._free[key]
                self._retained_bytes -= victim.nbytes

    @property
    def retained_bytes(self) -> int:
        """Bytes currently held for reuse."""
        with self._lock:
            return self._retained_bytes

    @property
    def lease_count(self) -> int:
        """Total leases served (hits + misses; zero-element leases excluded)."""
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_count(self) -> int:
        """Leases satisfied from a retained buffer."""
        with self._lock:
            return self.hits

    @property
    def miss_count(self) -> int:
        """Leases that had to allocate fresh storage."""
        with self._lock:
            return self.misses

    def stats(self) -> dict:
        """One consistent snapshot of the pool's counters.

        Reading the properties one by one can interleave with concurrent
        leases; the serve layer's :class:`~repro.serve.ServerStats`
        embeds this dict so its pool numbers are mutually consistent.
        """
        with self._lock:
            return {
                "leases": self.hits + self.misses,
                "hits": self.hits,
                "misses": self.misses,
                "retained_bytes": self._retained_bytes,
            }

    def clear(self) -> None:
        """Drop every retained buffer."""
        with self._lock:
            self._free.clear()
            self._retained_bytes = 0


class SegmentSpec(NamedTuple):
    """A picklable handle to one shared-memory-backed buffer.

    ``name`` is the OS-level segment name a worker process attaches
    with ``SharedMemory(name=...)``; ``shape``/``dtype_str`` rebuild the
    identical ndarray view over the mapping.
    """

    name: str
    shape: tuple[int, ...]
    dtype_str: str


class SharedBufferPool(BufferPool):
    """A :class:`BufferPool` whose buffers live in shared memory.

    The process-sharded executor (:mod:`repro.gemm.sharded`) packs A and
    B through one of these, so every packed buffer is backed by a
    ``multiprocessing.shared_memory`` segment that shard workers attach
    **zero-copy** — the parent ships segment names, never array bytes.

    Lease/release semantics are inherited unchanged, which is the
    satellite contract this class exists to honour:

    * ``release`` returns the buffer object itself to the free list — it
      never copies out of the segment, so a re-leased buffer is the same
      shared mapping (tests assert identity);
    * a zero-element lease short-circuits to a private ``np.empty``
      before any allocation, exactly like the in-process path —
      ``SharedMemory(create=True, size=0)`` would raise, and a zero-byte
      segment is useless to share anyway.

    The pool owns its segments: it keeps a strong reference to every
    (buffer, segment) pair so buffer ids stay stable for
    :meth:`segment_of` lookups, and :meth:`destroy` closes **and
    unlinks** them all. The creating process must call :meth:`destroy`
    when the run is done; workers only ever attach.
    """

    def __init__(self, max_retained_bytes: int = DEFAULT_MAX_RETAINED_BYTES):
        super().__init__(max_retained_bytes)
        self._segments_lock = threading.Lock()
        # id(buffer) -> (buffer, segment). The buffer reference keeps the
        # id from being recycled while the pool is alive.
        self._segments: dict[
            int, tuple[np.ndarray, shared_memory.SharedMemory]
        ] = {}

    def _allocate(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        buf = np.ndarray(shape, dtype=dt, buffer=segment.buf)
        with self._segments_lock:
            self._segments[id(buf)] = (buf, segment)
        return buf

    def segment_of(self, buf: np.ndarray) -> SegmentSpec:
        """The picklable handle for a buffer this pool allocated.

        Accepts the leased buffer itself (views into it resolve via
        ``.base`` on the caller's side if needed). Raises ``KeyError``
        for arrays the pool does not own.
        """
        with self._segments_lock:
            owned, segment = self._segments[id(buf)]
        if owned is not buf:  # pragma: no cover - id collision guard
            raise KeyError("buffer is not owned by this pool")
        return SegmentSpec(
            name=segment.name,
            shape=tuple(buf.shape),
            dtype_str=buf.dtype.str,
        )

    def destroy(self) -> None:
        """Close and unlink every segment; the pool is unusable after.

        Buffers handed out by :meth:`lease` become invalid — callers
        must have copied any results they keep (the sharded executor
        copies C out of the arena before destroying it).
        """
        self.clear()
        with self._segments_lock:
            pairs = list(self._segments.values())
            self._segments.clear()
        while pairs:
            buf, segment = pairs.pop()
            del buf  # drop this reference; callers may still hold views
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views still exported
                pass  # mapping lives until those views die; unlink anyway
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
