"""A reusable buffer pool for packed operand storage.

Packing allocates a handful of large contiguous buffers per ``multiply()``
call (one per packed region — see :mod:`repro.packing.pack`). Service
workloads call ``multiply()`` in a loop with recurring shapes, so those
allocations are highly redundant; the pool lets an engine hand buffers
back after a run and lease them again on the next call instead of paying
``np.empty`` + page-fault cost every time.

Semantics are deliberately minimal:

* :meth:`BufferPool.lease` returns an **uninitialised** C-contiguous
  array of exactly the requested shape and dtype — a retained buffer if
  one matches, a fresh allocation otherwise. Leased buffers are popped
  from the pool under a lock, so concurrent leases never share storage
  (this is what makes one engine object safe to run from many threads).
* :meth:`BufferPool.release` returns buffers for reuse. The pool retains
  at most ``max_retained_bytes`` in total and evicts the
  least-recently-released buffers beyond that, so a single huge problem
  cannot pin its working set forever.

The pool never zeroes storage: packed buffers are always fully
overwritten by the pack copy before use, which tests assert indirectly by
checking packed buffers are bit-identical to the loop-packing oracle.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

#: Default retention cap: generous enough for the benchmark shapes
#: (a 1536^3 float64 problem packs ~38 MiB), small enough to never
#: matter on a laptop.
DEFAULT_MAX_RETAINED_BYTES = 256 * 1024 * 1024


class BufferPool:
    """Thread-safe pool of reusable C-contiguous ndarray buffers."""

    def __init__(self, max_retained_bytes: int = DEFAULT_MAX_RETAINED_BYTES):
        if max_retained_bytes < 0:
            raise ValueError(
                f"max_retained_bytes must be >= 0, got {max_retained_bytes}"
            )
        self.max_retained_bytes = max_retained_bytes
        self._lock = threading.Lock()
        # (shape, dtype.str) -> list of free buffers; OrderedDict gives
        # cheap least-recently-released eviction across keys.
        self._free: OrderedDict[tuple, list[np.ndarray]] = OrderedDict()
        self._retained_bytes = 0
        self.hits = 0
        self.misses = 0

    def _key(self, shape: tuple[int, ...], dtype: np.dtype) -> tuple:
        return (tuple(shape), np.dtype(dtype).str)

    def lease(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialised C-contiguous array of ``shape``/``dtype``.

        Zero-element requests short-circuit: an empty array costs nothing
        to allocate, so it never takes the lock, never counts toward
        hit/miss stats, and is never retained by :meth:`release`.
        """
        if any(extent == 0 for extent in shape):
            return np.empty(shape, dtype=dtype)
        key = self._key(shape, dtype)
        with self._lock:
            bucket = self._free.get(key)
            if bucket:
                buf = bucket.pop()
                if not bucket:
                    del self._free[key]
                self._retained_bytes -= buf.nbytes
                self.hits += 1
                return buf
            self.misses += 1
        return np.empty(shape, dtype=dtype)

    def release(self, *buffers: np.ndarray) -> None:
        """Return buffers to the pool (caller must drop its references)."""
        with self._lock:
            for buf in buffers:
                if buf.nbytes > self.max_retained_bytes or buf.size == 0:
                    continue  # too big to retain / nothing to reuse
                key = self._key(buf.shape, buf.dtype)
                self._free.setdefault(key, []).append(buf)
                self._free.move_to_end(key)
                self._retained_bytes += buf.nbytes
            while self._retained_bytes > self.max_retained_bytes and self._free:
                key, bucket = next(iter(self._free.items()))
                victim = bucket.pop(0)
                if not bucket:
                    del self._free[key]
                self._retained_bytes -= victim.nbytes

    @property
    def retained_bytes(self) -> int:
        """Bytes currently held for reuse."""
        with self._lock:
            return self._retained_bytes

    def clear(self) -> None:
        """Drop every retained buffer."""
        with self._lock:
            self._free.clear()
            self._retained_bytes = 0
