"""Cost model for packing (Section 5.2.1).

Packing is a streaming copy: every element of A and B is read from its
source layout and written to the packed buffer. Both streams cross the
DRAM interface for matrices larger than the LLC, so the charge is
``2 * (elements_A + elements_B) * element_bytes`` against DRAM bandwidth.
The paper includes this overhead in all throughput and bandwidth
measurements; :func:`packing_cost` lets the executors do the same, and the
``bench_packing_overhead`` bench reports the packing fraction for skewed
shapes where it becomes significant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.spec import MachineSpec
from repro.util import require_nonnegative


@dataclass(frozen=True, slots=True)
class PackingCost:
    """Time and traffic charged to packing."""

    bytes_moved: int
    seconds: float

    def __add__(self, other: "PackingCost") -> "PackingCost":
        return PackingCost(
            bytes_moved=self.bytes_moved + other.bytes_moved,
            seconds=self.seconds + other.seconds,
        )


def packing_cost(
    machine: MachineSpec, elements_a: int, elements_b: int
) -> PackingCost:
    """Charge for packing A and B once each.

    Each packed element is read once and written once, so the DRAM-side
    traffic is twice the operand footprint.
    """
    require_nonnegative("elements_a", elements_a)
    require_nonnegative("elements_b", elements_b)
    bytes_moved = 2 * (elements_a + elements_b) * machine.element_bytes
    seconds = (
        bytes_moved * machine.external_traffic_factor
        / machine.dram_bytes_per_second
    )
    return PackingCost(bytes_moved=bytes_moved, seconds=seconds)
