"""repro — reproduction of *CAKE: Matrix Multiplication Using
Constant-Bandwidth Blocks* (Kung, Natesh, Sabot — SC '21).

The package is organised around the paper's structure:

``repro.core``
    Constant-bandwidth (CB) block theory: shaping, sizing, and the
    bandwidth/memory requirement equations of Sections 3 and 4.
``repro.schedule``
    Block partitioning of the M x N x K computation space and the
    K-first boustrophedon schedule of Algorithm 2, plus a
    surface-reuse analyzer.
``repro.machines``
    Parametric models of the CPUs in Table 2 (Intel i9-10900K,
    AMD Ryzen 9 5950X, ARM Cortex-A53), including internal-bandwidth
    scaling curves.
``repro.memsim``
    A trace-driven, multi-level LRU cache-hierarchy simulator used to
    reproduce the stall/access profiles of Figure 7.
``repro.packing``
    Blocked packing of operands into contiguous buffers (Section 5.2.1).
``repro.gemm``
    Executable GEMM engines: the CAKE executor, a faithful GOTO
    (Goto's algorithm) baseline standing in for MKL/ARMPL/OpenBLAS,
    and a naive reference.
``repro.perfmodel``
    Roofline-style performance evaluation of a schedule on a machine,
    producing the GFLOP/s and DRAM-GB/s series of Figures 9-12.
``repro.archsim``
    The packet-based discrete-event architecture simulator of
    Section 6.2.
``repro.analysis``
    Speedup, extrapolation, and matrix-shape-sweep helpers behind the
    evaluation figures.
``repro.dnn``
    Convolution-to-GEMM lowering used by the DNN-motivated examples.
``repro.bench``
    The experiment registry and harness shared by ``benchmarks/``.
``repro.serve``
    GEMM-as-a-service: an admission-controlled, deadline-aware
    multiply server with request coalescing, retry/backoff, and a
    graceful degradation ladder over the engines above.

Quickstart::

    import numpy as np
    from repro import cake_matmul
    from repro.machines import intel_i9_10900k

    rng = np.random.default_rng(0)
    a = rng.standard_normal((512, 384))
    b = rng.standard_normal((384, 640))
    report = cake_matmul(a, b, machine=intel_i9_10900k(), cores=10)
    np.testing.assert_allclose(report.c, a @ b, rtol=1e-10)
    print(report.gflops, report.dram_gb_per_s)
"""

from repro._version import __version__
from repro.errors import (
    AdmissionError,
    CakeError,
    ConfigurationError,
    DeadlineExceededError,
    ScheduleError,
    SimulationError,
)
from repro.api import cake_matmul, goto_matmul, serve

__all__ = [
    "__version__",
    "AdmissionError",
    "CakeError",
    "ConfigurationError",
    "DeadlineExceededError",
    "ScheduleError",
    "SimulationError",
    "cake_matmul",
    "goto_matmul",
    "serve",
]
