"""Experiment harness: one generator per paper table/figure.

Each experiment function in :mod:`repro.bench.experiments` produces an
:class:`~repro.bench.report.ExperimentReport` — the same rows/series the
paper's artifact reports, as formatted text plus raw data. The
``benchmarks/`` tree wraps each one in pytest-benchmark; the ``cake-bench``
CLI (:mod:`repro.bench.cli`) runs them standalone.
"""

from repro.bench.report import ExperimentReport
from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = ["ExperimentReport", "EXPERIMENTS", "run_experiment"]
