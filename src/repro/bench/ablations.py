"""Ablation experiments for the design choices the paper argues in prose.

These go beyond the paper's figures: each isolates one CAKE design
decision and measures what abandoning it costs, using the same machinery
as the figure reproductions.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.bench.report import ExperimentReport
from repro.core.cb_block import CBBlock
from repro.core.lru_sizing import solve_cake_mc
from repro.gemm.plan import CakePlan
from repro.machines.presets import intel_i9_10900k
from repro.memsim.profile import profile_cake
from repro.perfmodel.predict import predict_cake
from repro.schedule.reuse import analyze_reuse
from repro.schedule.space import BlockGrid, ComputationSpace
from repro.schedule.variants import SCHEDULE_BUILDERS
from repro.archsim.system import CakeSystem
from repro.packing.cost import packing_cost
from repro.dnn.models import resnet_like_layers


def ablation_schedule(scale: str = "full") -> ExperimentReport:
    """Section 2.2 ablation: external IO of K-first vs the alternatives.

    The paper argues the boustrophedon K-first order is optimal: partial
    surfaces cost double, so reduction must complete first, and the
    direction flips save O(Mb*Nb + Nb) surface fetches.
    """
    rep = ExperimentReport(
        "ablation-schedule", "External IO by block schedule (Section 2.2)"
    )
    size = 24 if scale == "full" else 12
    grid = BlockGrid(
        ComputationSpace(size * 4, size * 4, size * 4), CBBlock(4, 4, 4)
    )
    rows = []
    totals = {}
    for name, builder in sorted(SCHEDULE_BUILDERS.items()):
        io = analyze_reuse(grid, builder(grid))
        totals[name] = io.io_total
        rows.append(
            [
                name,
                io.io_a,
                io.io_b,
                io.io_c_spill,
                io.io_c_refetch,
                io.io_c_final,
                io.io_total,
            ]
        )
    base = totals["k-first"]
    rep.add_table(
        ["schedule", "A in", "B in", "C spill", "C refetch", "C final", "total"],
        rows,
    )
    for name, total in sorted(totals.items()):
        rep.add_line(f"{name}: {total / base:.3f}x the K-first IO")
    rep.data["totals"] = totals
    return rep


def ablation_alpha(scale: str = "full") -> ExperimentReport:
    """Section 3.2 ablation: sweeping alpha under scarce DRAM bandwidth.

    Alpha trades *local memory* for *external bandwidth*: wider blocks
    amortise the A surface over more computation. The trade only exists
    when the cache can afford the wider partial surface — Section 3's
    "with sufficient local memory resources" premise — so this ablation
    uses an Intel variant with a large LLC (mc pinned by the L2, so it
    does not shrink with alpha) and DRAM throttled to ~1/20th. The
    analytic ``alpha >= 1/(R-1)`` choice should land at the knee of the
    throughput curve; alpha = 1 (the plentiful-bandwidth default) should
    be clearly suboptimal here.
    """
    rep = ExperimentReport(
        "ablation-alpha", "Throughput vs CB aspect factor alpha (Section 3.2)"
    )
    base = intel_i9_10900k()
    starved = dataclasses.replace(
        base, dram_gb_per_s=1.8, llc_bytes=base.llc_bytes * 4
    )
    n = 4032 if scale == "full" else 2016
    rows = []
    gflops = {}
    for alpha in (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0):
        pred = predict_cake(starved, n, n, n, alpha=alpha)
        gflops[alpha] = pred.gflops
        rows.append(
            [alpha, f"{pred.gflops:.2f}", f"{pred.dram_gb_per_s:.3f}",
             pred.plan_summary["mc"]]
        )
    auto = predict_cake(starved, n, n, n)
    rep.add_table(["alpha", "GFLOP/s", "DRAM GB/s", "mc"], rows)
    rep.add_line(
        f"auto-selected alpha = {auto.plan_summary['alpha']:.2f} "
        f"-> {auto.gflops:.2f} GFLOP/s"
    )
    rep.data["gflops"] = gflops
    rep.data["auto"] = auto
    return rep


def ablation_lru_sizing(scale: str = "full") -> ExperimentReport:
    """Section 4.3 ablation: violating ``C + 2(A+B) <= S``.

    Blocks sized to the rule keep DRAM traffic near the operand minimum;
    oversizing mc (filling the cache completely) causes LRU thrash and a
    jump in DRAM requests, measured with the trace-driven hierarchy.
    """
    rep = ExperimentReport(
        "ablation-lru", "DRAM traffic vs CB block sizing (Section 4.3)"
    )
    machine = intel_i9_10900k()
    size = 2304 if scale == "full" else 1536
    space = ComputationSpace(size, size, size)
    mc_rule = solve_cake_mc(
        p=machine.cores,
        alpha=1.0,
        llc_elements=machine.llc_elements,
        l2_elements=machine.l2_elements,
        mr=machine.mr,
        nr=machine.nr,
    )
    rows = []
    dram = {}
    for label, mc in [
        ("half rule", mc_rule // 2),
        ("rule (Sec 4.3)", mc_rule),
        ("rule x1.25", int(mc_rule * 1.25)),
        ("rule x1.5", int(mc_rule * 1.5)),
    ]:
        plan = CakePlan(
            machine=machine, space=space, cores=machine.cores,
            alpha=1.0, mc=mc, kc=mc,
        )
        prof = profile_cake(machine, size, size, size, plan=plan)
        dram[label] = prof.dram_bytes
        rows.append(
            [label, mc, prof.dram_accesses, f"{prof.dram_bytes / 1e6:.0f} MB",
             f"{prof.local_stall_fraction:.2f}"]
        )
    rep.add_table(
        ["sizing", "mc", "DRAM requests", "DRAM traffic", "local stall frac"],
        rows,
    )
    rep.data["dram"] = dram
    rep.data["mc_rule"] = mc_rule
    return rep


def packing_overhead(scale: str = "full") -> ExperimentReport:
    """Section 5.2.1: packing overhead across matrix shapes.

    For large near-square problems packing is a sliver of total time; for
    skewed shapes (one dimension much smaller), it becomes significant.
    DNN conv layers (the intro's motivating workload) land in the skewed
    regime.
    """
    rep = ExperimentReport(
        "packing", "Packing overhead fraction by matrix shape (Section 5.2.1)"
    )
    machine = intel_i9_10900k()
    shapes: list[tuple[str, int, int, int]] = [
        ("square large", 8000, 8000, 8000),
        ("square small", 1000, 1000, 1000),
        ("skewed K", 8000, 8000, 64),
        ("skewed M", 64, 8000, 8000),
        ("skewed N", 8000, 64, 8000),
    ]
    for layer in resnet_like_layers():
        m, n, k = layer.gemm_shape()
        shapes.append((f"conv {layer.name}", m, n, k))
    rows = []
    fractions = {}
    for label, m, n, k in shapes:
        pred = predict_cake(machine, m, n, k)
        pack = packing_cost(machine, m * k, k * n)
        frac = pack.seconds / pred.seconds
        fractions[label] = frac
        rows.append([label, m, n, k, f"{pred.gflops:.0f}", f"{frac:.1%}"])
    rep.add_table(
        ["shape", "M", "N", "K", "CAKE GFLOP/s", "packing fraction"], rows
    )
    rep.data["fractions"] = fractions
    return rep


def archsim_validation(scale: str = "full") -> ExperimentReport:
    """Section 6.2: the packet simulator vs the closed-form block model.

    For a 4x4 core grid, each interior block needs ``n_block`` cycles of
    compute and ``(IO_A + IO_B) / BW`` cycles of streaming; measured total
    time should track ``max`` of the aggregate compute and IO terms as
    external bandwidth sweeps across the Eq. 2 floor.
    """
    import numpy as np

    rep = ExperimentReport(
        "archsim", "Packet-simulator timing vs closed-form model (Section 6.2)"
    )
    size = 24 if scale == "full" else 16
    rng = np.random.default_rng(42)
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    rows = []
    errors = {}
    for bw in (1.0, 2.0, 4.0, 8.0, 16.0, 64.0):
        sys_ = CakeSystem(4, 4, ext_bw_tiles_per_cycle=bw)
        run = sys_.run_matmul(a, b)
        np.testing.assert_allclose(run.c, a @ b, rtol=1e-10)
        compute = size * size * size / 16  # multiplies per core
        io = run.ext_tiles_out / bw
        predicted = max(compute, io)
        err = run.total_cycles / predicted - 1.0
        errors[bw] = err
        rows.append(
            [bw, f"{run.total_cycles:.0f}", f"{predicted:.0f}", f"{err:+.1%}",
             "io" if io > compute else "compute"]
        )
    rep.add_table(
        ["ext BW (tiles/cyc)", "measured cycles", "max(compute, IO)",
         "error", "bound"],
        rows,
    )
    rep.add_line("numerics verified against A @ B at every bandwidth")
    rep.data["errors"] = errors
    return rep


ABLATIONS: dict[str, Callable[[str], ExperimentReport]] = {
    "ablation-schedule": ablation_schedule,
    "ablation-alpha": ablation_alpha,
    "ablation-lru": ablation_lru_sizing,
    "packing": packing_overhead,
    "archsim": archsim_validation,
}
