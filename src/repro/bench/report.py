"""Experiment report type and table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def format_table(headers: list[str], rows: list[list[Any]]) -> list[str]:
    """Fixed-width text table (the style the paper's rows print in)."""

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.3f}" if abs(v) < 100 else f"{v:.1f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return lines


@dataclass(slots=True)
class ExperimentReport:
    """One table/figure reproduction: formatted rows plus raw data."""

    experiment_id: str
    title: str
    lines: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)
    tables: list[tuple[list[str], list[list[Any]]]] = field(
        default_factory=list
    )

    def add_table(self, headers: list[str], rows: list[list[Any]]) -> None:
        self.tables.append((list(headers), [list(r) for r in rows]))
        self.lines.extend(format_table(headers, rows))

    def add_line(self, text: str = "") -> None:
        self.lines.append(text)

    def text(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        return "\n".join([header, *self.lines, ""])

    def csv(self) -> str:
        """All tables as CSV (blank line between tables) — the
        plottable form of the figure's series."""
        import csv as _csv
        import io

        out = io.StringIO()
        writer = _csv.writer(out)
        for i, (headers, rows) in enumerate(self.tables):
            if i:
                out.write("\n")
            writer.writerow(headers)
            writer.writerows(rows)
        return out.getvalue()
