"""``cake-bench``: run paper experiments from the command line.

Examples::

    cake-bench --list
    cake-bench fig10
    cake-bench all --scale quick --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.ablations import ABLATIONS
from repro.bench.experiments import EXPERIMENTS, run_experiment


def describe_experiment(fn) -> str:
    """One-line description for ``--list``: the docstring's first
    non-blank line, or a placeholder when the docstring is missing,
    empty, or all-whitespace (``.splitlines()[0]`` would raise)."""
    for line in (fn.__doc__ or "").strip().splitlines():
        if line.strip():
            return line.strip()
    return "(no description)"


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``cake-bench`` console script."""
    registry = {**EXPERIMENTS, **ABLATIONS}
    parser = argparse.ArgumentParser(
        prog="cake-bench",
        description="Reproduce the tables and figures of the CAKE paper "
        "(Kung, Natesh, Sabot — SC '21) on the simulated substrate.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment id (see --list) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=("full", "quick"),
        default="full",
        help="problem sizes: paper scale or reduced",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write reports to this dir"
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="with --out, additionally write each report's tables as CSV",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan experiment grids over this many worker processes "
        "(default: serial); crashed or hung pools are rebuilt for the "
        "unfinished cells, degrading to inline serial execution if "
        "rebuilding keeps failing",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="memoize completed experiment cells in this directory; "
        "rows checkpoint as they finish, so an interrupted run resumes "
        "from its partial progress",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry each failed cell up to N times with capped "
        "exponential backoff (jitter is deterministic per task)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task time budget; a worker shard exceeding "
        "len(shard)*SECONDS is presumed hung, its pool is torn down and "
        "the unfinished cells re-run (needs --workers >= 2)",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "collect"),
        default="raise",
        help="'raise': abort an experiment on a permanently failed cell; "
        "'collect': finish the remaining cells, report the failures, "
        "mark BENCH output incomplete, and exit nonzero",
    )
    parser.add_argument(
        "--inject-faults",
        nargs="?",
        const="env",
        default=None,
        metavar="PLAN",
        help="deterministic fault injection for smoke-testing recovery: "
        "inline JSON plan, @file, or bare flag to read CAKE_FAULT_PLAN",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="DIR",
        help="write machine-readable BENCH_<id>.json rows to this dir",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="compute backend for numeric experiments (see "
        "repro.gemm.backends; e.g. numpy, blas-group); analytic-only "
        "experiments are unaffected",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="P",
        help="shard numeric experiments over this many worker processes "
        "(see repro.gemm.sharded): packed operands are shared zero-copy "
        "and the product stays bit-identical to the serial path; "
        "analytic-only experiments are unaffected",
    )
    parser.add_argument(
        "--clients",
        default=None,
        metavar="N[,N...]",
        help="client-concurrency levels for the 'serve' experiment "
        "(sets CAKE_SERVE_CLIENTS; e.g. 1,2,4); other experiments are "
        "unaffected",
    )
    parser.add_argument(
        "--tuned",
        action="store_true",
        help="resolve engine plans through the autotuner's plan cache "
        "(see repro.tune; cold keys tune once and persist, so a second "
        "run is pure cache hits); analytic-only experiments are "
        "unaffected",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="MS",
        help="per-request deadline in milliseconds for the 'serve' "
        "experiment (sets CAKE_SERVE_DEADLINE_MS); requests admitted "
        "but not answered within it terminate structured",
    )
    args = parser.parse_args(argv)

    if args.clients is not None:
        import os

        levels = [p for p in args.clients.split(",") if p.strip()]
        if not levels or any(
            not p.strip().isdigit() or int(p) < 1 for p in levels
        ):
            parser.error(
                f"--clients: expected positive integers, got {args.clients!r}"
            )
        os.environ["CAKE_SERVE_CLIENTS"] = args.clients
    if args.deadline is not None:
        import os

        if args.deadline <= 0:
            parser.error("--deadline: must be a positive budget in ms")
        os.environ["CAKE_SERVE_DEADLINE_MS"] = str(args.deadline)

    if args.backend is not None:
        from repro.gemm.backends import (
            BackendCapabilityError,
            set_default_backend,
        )

        try:
            set_default_backend(args.backend)
        except BackendCapabilityError as exc:
            parser.error(f"--backend: {exc}")

    if args.processes is not None:
        from repro.gemm.sharded import set_default_processes

        try:
            set_default_processes(args.processes)
        except ValueError as exc:
            parser.error(f"--processes: {exc}")

    if args.tuned:
        from repro.tune import set_default_tune

        set_default_tune(True)

    if args.list:
        for name, fn in sorted(registry.items()):
            print(f"{name:20s} {describe_experiment(fn)}")
        return 0

    fault_plan = None
    if args.inject_faults is not None:
        from repro.runtime import FAULT_PLAN_ENV, FaultPlan

        try:
            if args.inject_faults == "env":
                fault_plan = FaultPlan.from_env()
                if fault_plan is None:
                    parser.error(f"--inject-faults: {FAULT_PLAN_ENV} is not set")
            else:
                fault_plan = FaultPlan.from_spec(args.inject_faults)
        except (ValueError, OSError) as exc:
            parser.error(f"--inject-faults: {exc}")

    runtime = None
    wants_runtime = (
        args.workers is not None
        or args.cache_dir is not None
        or args.json is not None
        or args.retries > 0
        or args.task_timeout is not None
        or args.on_error != "raise"
        or fault_plan is not None
    )
    if wants_runtime:
        from repro.runtime import ExperimentRuntime

        try:
            runtime = ExperimentRuntime(
                workers=args.workers,
                cache_dir=args.cache_dir,
                retries=args.retries,
                task_timeout=args.task_timeout,
                on_error=args.on_error,
                faults=fault_plan,
            )
        except ValueError as exc:
            parser.error(str(exc))

    if runtime is not None:
        from repro.runtime import IncompleteRunError, TaskExecutionError

        run_errors: tuple[type, ...] = (IncompleteRunError, TaskExecutionError)
    else:
        run_errors = ()

    exit_status = 0
    names = sorted(registry) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        failed = None
        report = None
        try:
            report = run_experiment(name, args.scale, runtime=runtime)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        except run_errors as exc:
            failed = exc
        elapsed = time.perf_counter() - start

        if failed is not None:
            exit_status = 1
            failures = getattr(failed, "failures", None)
            if failures is None:
                failures = failed.report.failures
            print(f"[{name} FAILED after {elapsed:.1f}s] {failed}", file=sys.stderr)
            for outcome in failures:
                print(
                    f"  task {outcome.task_id}: {outcome.error_type}: "
                    f"{outcome.error_message} ({outcome.attempts} attempt(s))",
                    file=sys.stderr,
                )
        else:
            print(report.text())
            print(f"[{name} generated in {elapsed:.1f}s]\n")
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(report.text())
                if args.csv:
                    (args.out / f"{name}.csv").write_text(report.csv())
        if args.json is not None:
            from repro.runtime import rows_from_report, write_bench_json

            rows = runtime.drain_rows() if runtime is not None else []
            stats = runtime.last_stats if runtime is not None and rows else None
            if failed is not None:
                # Partial emission: completed rows only, marked incomplete.
                path = write_bench_json(
                    args.json,
                    name,
                    rows,
                    wall_seconds=elapsed,
                    scale=args.scale,
                    runtime_stats=runtime.last_stats if runtime else None,
                    complete=False,
                    failures=failures,
                )
            else:
                path = write_bench_json(
                    args.json,
                    name,
                    rows or rows_from_report(report),
                    wall_seconds=elapsed,
                    scale=args.scale,
                    runtime_stats=stats,
                )
            print(f"[{name} rows -> {path}]\n")
    return exit_status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
