"""``cake-bench``: run paper experiments from the command line.

Examples::

    cake-bench --list
    cake-bench fig10
    cake-bench all --scale quick --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.ablations import ABLATIONS
from repro.bench.experiments import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``cake-bench`` console script."""
    registry = {**EXPERIMENTS, **ABLATIONS}
    parser = argparse.ArgumentParser(
        prog="cake-bench",
        description="Reproduce the tables and figures of the CAKE paper "
        "(Kung, Natesh, Sabot — SC '21) on the simulated substrate.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment id (see --list) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=("full", "quick"),
        default="full",
        help="problem sizes: paper scale or reduced",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write reports to this dir"
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="with --out, additionally write each report's tables as CSV",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan experiment grids over this many worker processes "
        "(default: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="memoize completed experiment cells in this directory",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="DIR",
        help="write machine-readable BENCH_<id>.json rows to this dir",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in sorted(registry.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:20s} {doc}")
        return 0

    runtime = None
    if args.workers is not None or args.cache_dir is not None or args.json is not None:
        from repro.runtime import ExperimentRuntime

        try:
            runtime = ExperimentRuntime(
                workers=args.workers, cache_dir=args.cache_dir
            )
        except ValueError as exc:
            parser.error(str(exc))

    names = sorted(registry) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        try:
            report = run_experiment(name, args.scale, runtime=runtime)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - start
        print(report.text())
        print(f"[{name} generated in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(report.text())
            if args.csv:
                (args.out / f"{name}.csv").write_text(report.csv())
        if args.json is not None:
            from repro.runtime import rows_from_report, write_bench_json

            rows = runtime.drain_rows() if runtime is not None else []
            stats = runtime.last_stats if runtime is not None and rows else None
            path = write_bench_json(
                args.json,
                name,
                rows or rows_from_report(report),
                wall_seconds=elapsed,
                scale=args.scale,
                runtime_stats=stats,
            )
            print(f"[{name} rows -> {path}]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
