"""Experiment generators: one per table/figure of the paper.

Every generator returns an :class:`~repro.bench.report.ExperimentReport`
whose ``lines`` print the same rows/series the paper reports and whose
``data`` dict carries the raw values the bench assertions check. The
``scale`` argument selects ``"full"`` (paper problem sizes) or ``"quick"``
(reduced sizes with identical structure, for fast iteration).
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.scaling import scaling_series
from repro.analysis.speedup import speedup_series
from repro.analysis.sweep import relative_throughput_grid
from repro.bench.report import ExperimentReport
from repro.core.requirements import (
    external_bandwidth_min,
    internal_memory_required,
)
from repro.core.shaping import cb_block_shape
from repro.machines.presets import (
    amd_ryzen_9_5950x,
    arm_cortex_a53,
    intel_i9_10900k,
)
from repro.memsim.profile import profile_cake, profile_goto
from repro.util.units import bytes_to_gib, bytes_to_mib


def table2_machines(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Table 2: the CPUs used in the evaluation."""
    rep = ExperimentReport("table2", "CPUs used in CAKE evaluation")
    rows = []
    for spec in (intel_i9_10900k(), amd_ryzen_9_5950x(), arm_cortex_a53()):
        rows.append(
            [
                spec.name,
                f"{spec.l1_bytes // 1024} KiB",
                f"{spec.l2_bytes // 1024} KiB",
                "N/A (L2 shared)" if spec.llc_is_l2 else f"{bytes_to_mib(spec.llc_bytes):.0f} MiB",
                f"{bytes_to_gib(spec.dram_bytes):.0f} GB",
                spec.cores,
                f"{spec.dram_gb_per_s:.0f} GB/s",
            ]
        )
    rep.add_table(
        ["CPU", "L1", "L2", "LLC", "DRAM", "Cores", "DRAM bandwidth"], rows
    )
    rep.data["machines"] = rows
    return rep


def fig4_cb_scaling(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Figure 4: growing CB blocks keep external bandwidth constant.

    Blocks (a)-(c) of the figure: core count grows 1x, 2x, px; volume and
    arithmetic intensity grow proportionally; Eq. 2's required bandwidth
    stays fixed while Eq. 1's memory grows quadratically.
    """
    rep = ExperimentReport(
        "fig4", "CB block scaling at constant external bandwidth"
    )
    k, alpha = 4, 1.0
    rows = []
    bws = []
    for p in (1, 2, 4, 8, 16):
        block = cb_block_shape(p, k, alpha)
        bw = external_bandwidth_min(k, alpha)
        mem = internal_memory_required(p, k, alpha)
        ai = block.volume / block.input_io
        rows.append(
            [p * k, f"{block.m}x{block.n}x{block.k}", block.volume, ai, bw, mem]
        )
        bws.append(bw)
    rep.add_table(
        ["cores", "block (m x n x k)", "volume", "arith intensity",
         "BW_min (Eq.2, tiles/cyc)", "MEM (Eq.1, tiles)"],
        rows,
    )
    rep.data["bandwidths"] = bws
    rep.data["intensities"] = [r[3] for r in rows]
    rep.data["memories"] = [r[5] for r in rows]
    return rep


def fig7a_intel_stalls(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Figure 7a: memory-request stalls per level, CAKE vs MKL (Intel).

    The paper uses 10000x10000; any size whose C surface exceeds the
    20 MiB LLC shows the same mechanism, so we use 2304 (C = 21 MB) to
    keep the trace fast — the *contrast*, not the absolute tick count,
    is the result.
    """
    size = 2304 if scale == "full" else 1536
    machine = intel_i9_10900k()
    rep = ExperimentReport(
        "fig7a", f"Memory request stalls on Intel i9 ({size}^2 MM, 10 cores)"
    )
    cake = profile_cake(machine, size, size, size)
    goto = profile_goto(machine, size, size, size)
    rows = []
    for level in ("L1", "L2", "LLC", "DRAM"):
        rows.append(
            [level, cake.stall_profile[level], goto.stall_profile[level]]
        )
    rep.add_table(["level", "CAKE stall cycles", "MKL(GOTO) stall cycles"], rows)
    rep.add_line(
        f"local stall fraction: CAKE {cake.local_stall_fraction:.2f}, "
        f"MKL(GOTO) {goto.local_stall_fraction:.2f}"
    )
    rep.data["cake"] = cake
    rep.data["goto"] = goto
    return rep


def fig7b_arm_accesses(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Figure 7b: cache hits and DRAM accesses, CAKE vs ARMPL (ARM).

    Paper size is 3000x3000; the full scale uses 1920 (same mechanism,
    C and B panels far beyond the 512 KiB shared L2) to keep the pure-
    Python trace in seconds.
    """
    size = 1920 if scale == "full" else 960
    machine = arm_cortex_a53()
    rep = ExperimentReport(
        "fig7b", f"Cache and DRAM accesses on ARM ({size}^2 MM, 4 cores)"
    )
    cake = profile_cake(machine, size, size, size)
    goto = profile_goto(machine, size, size, size)
    rep.add_table(
        ["counter", "CAKE", "ARMPL(GOTO)"],
        [
            ["L1 hits", cake.l1_hits, goto.l1_hits],
            ["L2 hits", cake.l2_hits, goto.l2_hits],
            ["DRAM requests", cake.dram_accesses, goto.dram_accesses],
        ],
    )
    ratio = goto.dram_accesses / max(cake.dram_accesses, 1)
    rep.add_line(f"ARMPL(GOTO) performs {ratio:.1f}x more DRAM requests than CAKE")
    rep.data["cake"] = cake
    rep.data["goto"] = goto
    rep.data["dram_ratio"] = ratio
    return rep


def fig8_shape_contours(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Figure 8: relative throughput CAKE/MKL over matrix shapes (Intel)."""
    machine = intel_i9_10900k()
    if scale == "full":
        values = tuple(range(1000, 8001, 1000))
    else:
        values = (1000, 3000, 5000, 8000)
    rep = ExperimentReport(
        "fig8", "Relative throughput CAKE vs MKL(GOTO) over matrix shapes"
    )
    panels = {}
    for aspect in (1.0, 2.0, 4.0, 8.0):
        panel = relative_throughput_grid(
            machine, aspect=aspect, m_values=values, k_values=values,
            runtime=runtime,
        )
        panels[aspect] = panel
        rep.add_line(f"-- panel M = {aspect:.0f}N --")
        headers = ["K \\ M"] + [str(m) for m in panel.m_values]
        rows = [
            [str(k)] + [f"{panel.ratio[ki, mi]:.2f}x" for mi in range(len(panel.m_values))]
            for ki, k in enumerate(panel.k_values)
        ]
        rep.add_table(headers, rows)
        rep.add_line(
            f"cells with CAKE >= 1.25x: {panel.fraction_above(1.25):.0%}; "
            f">= 1.0x: {panel.fraction_above(1.0):.0%}"
        )
        rep.add_line()
    rep.data["panels"] = panels
    return rep


def _speedup_report(machine, sizes, rep: ExperimentReport, goto_label: str, runtime=None):
    series = {}
    for n in sizes:
        cake = speedup_series(machine, n, engine="cake", runtime=runtime)
        goto = speedup_series(machine, n, engine="goto", runtime=runtime)
        series[n] = (cake, goto)
        headers = ["cores"] + [str(p) for p in cake.cores]
        rep.add_line(f"-- M = N = K = {n} --")
        rep.add_table(
            headers,
            [
                ["CAKE"] + [f"{s:.2f}" for s in cake.speedups],
                [goto_label] + [f"{s:.2f}" for s in goto.speedups],
            ],
        )
        rep.add_line()
    rep.data["series"] = series
    return rep


def fig9a_intel_speedup(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Figure 9a: speedup for square matrices, CAKE vs MKL (Intel)."""
    rep = ExperimentReport("fig9a", "Speedup for square matrices, Intel i9")
    sizes = (1000, 2000, 3000) if scale == "full" else (1000, 2000)
    return _speedup_report(intel_i9_10900k(), sizes, rep, "MKL(GOTO)", runtime)


def fig9b_arm_speedup(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Figure 9b: speedup for square matrices, CAKE vs ARMPL (ARM)."""
    rep = ExperimentReport("fig9b", "Speedup for square matrices, ARM A53")
    sizes = (1000, 2000, 3000) if scale == "full" else (1000, 2000)
    return _speedup_report(arm_cortex_a53(), sizes, rep, "ARMPL(GOTO)", runtime)


def _scaling_report(
    rep: ExperimentReport,
    machine,
    n: int,
    *,
    extrapolate_to: int,
    core_step: int,
    goto_label: str,
    runtime=None,
) -> ExperimentReport:
    points = scaling_series(
        machine, n, extrapolate_to=extrapolate_to, core_step=core_step,
        runtime=runtime,
    )
    rows = []
    for pt in points:
        rows.append(
            [
                pt.cores,
                "extrap" if pt.extrapolated else "meas",
                f"{pt.cake.gflops:.0f}",
                f"{pt.goto.gflops:.0f}",
                f"{pt.cake.dram_gb_per_s:.2f}",
                f"{pt.goto.dram_gb_per_s:.2f}",
                f"{pt.cake_optimal_dram_gb_per_s:.2f}",
                f"{pt.internal_bw_gb_per_s:.0f}",
            ]
        )
    rep.add_table(
        [
            "cores", "kind",
            "CAKE GFLOP/s", f"{goto_label} GFLOP/s",
            "CAKE DRAM GB/s", f"{goto_label} DRAM GB/s",
            "CAKE optimal GB/s", "internal BW GB/s",
        ],
        rows,
    )
    rep.data["points"] = points
    return rep


def fig10_intel_scaling(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Figure 10: Intel i9, 23040^2 MM — DRAM BW, throughput, internal BW."""
    n = 23040 if scale == "full" else 5760
    rep = ExperimentReport(
        "fig10", f"Intel i9-10900K scaling ({n}x{n} MM), CAKE vs MKL(GOTO)"
    )
    return _scaling_report(
        rep, intel_i9_10900k(), n, extrapolate_to=20, core_step=1,
        goto_label="MKL", runtime=runtime,
    )


def fig11_arm_scaling(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Figure 11: ARM A53, 3000^2 MM — DRAM BW, throughput, internal BW."""
    n = 3000 if scale == "full" else 1000
    rep = ExperimentReport(
        "fig11", f"ARM Cortex-A53 scaling ({n}x{n} MM), CAKE vs ARMPL(GOTO)"
    )
    return _scaling_report(
        rep, arm_cortex_a53(), n, extrapolate_to=8, core_step=1,
        goto_label="ARMPL", runtime=runtime,
    )


def fig12_amd_scaling(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Figure 12: AMD 5950X, 23040^2 MM — CAKE vs OpenBLAS(GOTO)."""
    n = 23040 if scale == "full" else 5760
    rep = ExperimentReport(
        "fig12", f"AMD Ryzen 9 5950X scaling ({n}x{n} MM), CAKE vs OpenBLAS(GOTO)"
    )
    return _scaling_report(
        rep, amd_ryzen_9_5950x(), n, extrapolate_to=32, core_step=2,
        goto_label="OpenBLAS", runtime=runtime,
    )


def verify_overhead(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """ABFT verified execution: overhead, bit-identity, and self-healing.

    Not a paper figure — the robustness companion to the performance
    experiments: the same CAKE run with checksum verification on must
    return the bit-identical product for a bounded wall-clock premium,
    and an injected strip corruption must heal back to the clean result.
    The full-scale overhead floor is enforced by
    ``benchmarks/bench_verify_overhead.py``; this report records the
    measured ratio at either scale.
    """
    import time as _time

    import numpy as np

    from repro.gemm.cake import CakeGemm
    from repro.gemm.verify import VerifyConfig
    from repro.runtime.faults import NumericFaultPlan, NumericFaultRule

    n = 768 if scale == "full" else 192
    machine = intel_i9_10900k()
    rep = ExperimentReport(
        "verify", f"ABFT verified-execution overhead ({n}^3 MM, Intel i9)"
    )
    rng = np.random.default_rng(20210)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))

    rows = []
    for workers in (1, 2):
        plain = CakeGemm(machine, workers=workers)
        verified = CakeGemm(machine, workers=workers, verify=True)
        t0 = _time.perf_counter()
        base = plain.multiply(a, b)
        t_off = _time.perf_counter() - t0
        t0 = _time.perf_counter()
        ver = verified.multiply(a, b)
        t_on = _time.perf_counter() - t0
        if not np.array_equal(base.c, ver.c):
            raise AssertionError("verified product drifted from baseline")
        if base.counters != ver.counters:
            raise AssertionError("verified counters drifted from baseline")
        ratio = t_on / t_off if t_off > 0 else float("inf")
        rows.append(
            [
                workers,
                f"{t_off * 1e3:.1f} ms",
                f"{t_on * 1e3:.1f} ms",
                f"{ratio:.2f}x",
                ver.verify.blocks,
                f"{ver.verify.checksum_bytes(machine.element_bytes) / 1e3:.0f} kB",
            ]
        )
        rep.data.setdefault("ratios", {})[workers] = ratio
    rep.add_table(
        [
            "workers", "verify off", "verify on", "overhead",
            "blocks checked", "checksum traffic",
        ],
        rows,
    )

    # Self-healing demonstration: one corrupted strip, recovered to the
    # bit-identical clean product.
    plan = NumericFaultPlan(
        rules=(NumericFaultRule(block=0, strip=0, kind="scale", factor=3.0),)
    )
    clean = CakeGemm(machine, workers=2).multiply(a, b)
    healed = CakeGemm(
        machine, workers=2, verify=VerifyConfig(inject=plan)
    ).multiply(a, b)
    if not np.array_equal(clean.c, healed.c):
        raise AssertionError("injected corruption was not healed bit-exactly")
    rep.add_line(
        f"fault injection: {healed.verify.mismatches} corrupted block(s) "
        f"detected, {healed.verify.retry_recoveries} healed by retry, "
        f"{healed.verify.oracle_recoveries} by oracle — product bit-identical"
    )
    rep.data["healed"] = healed.verify.as_dict()
    return rep


def backends_matrix(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Compute-backend matrix: wall time and exactness per backend.

    Not a paper figure — the schedule/compute seam companion: the same
    CAKE schedule executed through every available compute backend
    (:mod:`repro.gemm.backends`) must produce the same product (bit-exact
    for deterministic backends, within the declared agreement band
    otherwise) and identical traffic counters, while wall time is free
    to differ. The full-scale speedup floor is enforced by
    ``benchmarks/bench_backends.py``; this report records the measured
    times at either scale and re-checks exactness at every cell.
    """
    import time as _time

    import numpy as np

    from repro.gemm.backends import available_backends, backend_spec
    from repro.gemm.cake import CakeGemm
    from repro.gemm.verify import VerifyConfig
    from repro.runtime.faults import NumericFaultPlan, NumericFaultRule

    n = 512 if scale == "full" else 160
    machine = intel_i9_10900k()
    rep = ExperimentReport(
        "backends", f"Compute-backend matrix ({n}^3 MM, Intel i9)"
    )
    rng = np.random.default_rng(20217)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))

    oracle = CakeGemm(machine, backend="numpy").multiply(a, b)
    band = 8.0 * np.finfo(a.dtype).eps * (n + 2) * float(
        np.abs(a).dot(np.abs(b)).max()
    )
    rows = []
    for name in available_backends():
        spec = backend_spec(name)
        engine = CakeGemm(machine, backend=name)
        t0 = _time.perf_counter()
        run = engine.multiply(a, b)
        dt = _time.perf_counter() - t0
        if spec.capabilities.deterministic:
            exact = bool(np.array_equal(run.c, oracle.c))
            if not exact:
                raise AssertionError(
                    f"deterministic backend {name!r} drifted from the oracle"
                )
        else:
            exact = bool(np.abs(run.c - oracle.c).max() <= band)
            if not exact:
                raise AssertionError(
                    f"backend {name!r} outside its agreement band"
                )
        if run.counters != oracle.counters:
            raise AssertionError(f"backend {name!r} changed traffic counters")
        rows.append(
            [
                name,
                "bit-exact" if spec.capabilities.deterministic else "banded",
                f"{dt * 1e3:.1f} ms",
                run.backend,
                "yes" if spec.capabilities.grouped else "no",
            ]
        )
        rep.data.setdefault("seconds", {})[name] = dt
    rep.add_table(
        ["backend", "agreement", "wall time", "recorded", "grouped"], rows
    )

    # The headline ABFT scenario: a fast non-oracle backend with an
    # injected corruption, healed back to ITS OWN clean product exactly.
    plan = NumericFaultPlan(
        rules=(NumericFaultRule(block=0, strip=0, kind="scale", factor=3.0),)
    )
    clean = CakeGemm(machine, backend="blas-group").multiply(a, b)
    healed = CakeGemm(
        machine, backend="blas-group", verify=VerifyConfig(inject=plan)
    ).multiply(a, b)
    if not np.array_equal(clean.c, healed.c):
        raise AssertionError(
            "injected corruption on blas-group was not healed bit-exactly"
        )
    rep.add_line(
        f"verified blas-group: {healed.verify.mismatches} corrupted block(s) "
        f"detected, {healed.verify.retry_recoveries} healed by retry, "
        f"{healed.verify.oracle_recoveries} by oracle — product bit-identical "
        "to the clean blas-group run"
    )
    rep.data["healed"] = healed.verify.as_dict()
    return rep


def sharded_execution(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Process-sharded execution: exactness, shard grid, and IPC traffic.

    Not a paper figure — the CAKE-on-CAKE companion: the M x N grid of
    CB blocks is partitioned into a near-square shard grid
    (:mod:`repro.gemm.sharded`), packed operands live in shared-memory
    segments that workers attach zero-copy, and each shard runs the
    threaded executor in its own process. The product and the
    schedule-derived counters must be bit-identical to the serial run
    at every process count, and the measured inter-process bytes must
    sit within the documented slack of the memory-independent
    communication lower bound. The full-scale speedup floor is
    enforced by ``benchmarks/bench_sharded.py``; this report records
    the measured times at either scale and re-checks exactness at
    every cell.
    """
    import time as _time

    import numpy as np

    from repro.gemm.cake import CakeGemm
    from repro.gemm.sharded import IPC_SLACK_FACTOR

    # cores=1 keeps the CB blocks small enough that the block grid has
    # several rows and columns to shard (multi-core plans grow blocks
    # until one covers these problem sizes whole).
    m, n, k = (600, 840, 340) if scale == "full" else (300, 420, 170)
    machine = intel_i9_10900k()
    rep = ExperimentReport(
        "sharded", f"Process-sharded CAKE execution ({m}x{n}x{k} MM, Intel i9)"
    )
    rng = np.random.default_rng(20218)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))

    serial = CakeGemm(machine, cores=1).multiply(a, b)
    rows = []
    for processes in (1, 2, 4):
        engine = CakeGemm(machine, cores=1, processes=processes)
        t0 = _time.perf_counter()
        run = engine.multiply(a, b)
        dt = _time.perf_counter() - t0
        if not np.array_equal(run.c, serial.c):
            raise AssertionError(
                f"sharded product drifted from serial at P={processes}"
            )
        if run.counters.without_ipc() != serial.counters.without_ipc():
            raise AssertionError(
                f"sharded counters drifted from serial at P={processes}"
            )
        if run.shards is not None:
            grid = f"{run.shards.rows}x{run.shards.cols}"
            slack = run.shards.slack
            if slack > IPC_SLACK_FACTOR:
                raise AssertionError(
                    f"IPC slack {slack:.3f} exceeds the documented "
                    f"{IPC_SLACK_FACTOR}x bound at P={processes}"
                )
            ipc = f"{run.counters.ipc_bytes / 1e6:.1f} MB"
            slack_s = f"{slack:.3f}x"
            rep.data.setdefault("slack", {})[processes] = slack
        else:
            grid, ipc, slack_s = "-", "-", "-"
        rows.append(
            [processes, grid, f"{dt * 1e3:.1f} ms", ipc, slack_s]
        )
        rep.data.setdefault("seconds", {})[processes] = dt
        rep.data.setdefault("grids", {})[processes] = grid
    rep.add_table(
        ["processes", "shard grid", "wall time", "IPC traffic",
         "IPC / lower bound"],
        rows,
    )
    rep.add_line(
        "product and schedule-derived counters bit-identical to serial "
        "at every process count"
    )
    return rep


def serve_load(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """GEMM-as-a-service under concurrent clients, audited bit-for-bit.

    Not a paper figure — the serving-layer companion (ISSUE 8): for
    each client-concurrency level, closed-loop clients stream Fig-8
    skewed multiplies through one admission-controlled
    :class:`~repro.serve.server.MultiplyServer`, and every successful
    response is checked bit-identical to a direct engine call. Sheds
    and deadline expiries are reported as their own columns — they are
    the server doing its job — while a bit-mismatch, an unstructured
    error, or a stranded handle fails the experiment.

    Environment knobs (also settable via ``cake-bench serve --clients /
    --deadline``): ``CAKE_SERVE_CLIENTS`` (comma-separated levels),
    ``CAKE_SERVE_DEADLINE_MS`` (per-request budget; default none).
    """
    import os as _os

    from repro.serve.loadgen import OperandSet, run_load
    from repro.serve.server import MultiplyServer

    levels_env = _os.environ.get("CAKE_SERVE_CLIENTS", "1,2,4")
    levels = [int(p) for p in levels_env.split(",") if p.strip()]
    deadline_env = _os.environ.get("CAKE_SERVE_DEADLINE_MS")
    deadline = float(deadline_env) / 1000.0 if deadline_env else None
    n = 256 if scale == "full" else 128
    requests_per_client = 6 if scale == "full" else 3

    machine = intel_i9_10900k()
    deadline_label = (
        "no deadline" if deadline is None else f"{deadline:.3f}s deadline"
    )
    rep = ExperimentReport(
        "serve",
        f"GEMM-as-a-service load sweep (Fig-8 skewed N={n}, "
        f"{deadline_label}, Intel i9)",
    )
    operands = OperandSet.figure8_skewed(n, machine=machine)
    rows = []
    for clients in levels:
        with MultiplyServer(
            machine, executors=2, default_deadline=deadline
        ) as server:
            load = run_load(
                server,
                operands,
                clients=clients,
                requests_per_client=requests_per_client,
                deadline=deadline,
            )
            stats = server.stats()
        if load.mismatches or load.failed or load.unresolved:
            raise AssertionError(
                f"serving contract violated at {clients} clients: "
                f"{load.mismatches} bit-mismatches, {load.failed} "
                f"unstructured failures, {load.unresolved} stranded "
                f"handles ({load.errors})"
            )
        rows.append(
            [
                clients,
                load.ok,
                load.shed,
                load.deadline_exceeded,
                f"{1e3 * load.percentile(50):.1f} ms",
                f"{1e3 * load.percentile(99):.1f} ms",
                f"{load.throughput_rps:.1f}/s",
                stats.coalesced,
                stats.retries,
            ]
        )
        rep.data.setdefault("levels", {})[clients] = {
            **load.as_dict(),
            "server": stats.as_dict(),
        }
    rep.add_table(
        ["clients", "ok", "shed", "expired", "p50", "p99",
         "throughput", "coalesced", "retries"],
        rows,
    )
    rep.add_line(
        "every successful response bit-identical to a direct engine "
        "call; sheds and expiries are structured, never silent"
    )
    return rep


def autotune(scale: str = "full", *, runtime=None) -> ExperimentReport:
    """Plan autotuner: tuned-vs-analytic speedup and cache amortization.

    Not a paper figure — the autotuner companion (ISSUE 9): for a cube
    and the Fig-8 skewed shape (short M, deep K), one cold
    :class:`~repro.tune.PlanTuner` search finds a bit-identical faster
    execution plan, persists it in a versioned plan cache, and a second
    resolution is a pure cache hit (no search). The tuned product is
    re-executed and asserted bit-identical to the analytic engine's;
    the report records measured speedup, the cold-tune cost it
    amortizes, and the cache-hit cost it amortizes down to. The
    full-scale speedup floor is enforced by
    ``benchmarks/bench_autotune.py``.
    """
    import tempfile
    import time as _time

    import numpy as np

    from repro.gemm.cake import CakeGemm
    from repro.tune import PlanTuner, TuneConfig, TuneKey

    n = 256 if scale == "full" else 128
    machine = intel_i9_10900k()
    rep = ExperimentReport(
        "autotune", f"Online plan autotuning (cube + skewed, N={n}, Intel i9)"
    )
    shapes = [
        ("cube", n, n, n),
        ("skewed", max(n // 4, 1), n, 2 * n),
    ]
    rows = []
    with tempfile.TemporaryDirectory(prefix="cake-tune-exp-") as root:
        tuner = PlanTuner(machine, TuneConfig(cache_root=root, repeats=2))
        for label, m, nn, k in shapes:
            key = TuneKey(
                engine="cake", m=m, n=nn, k=k, dtype="<f4",
                machine=machine.name, cores=None, backend="numpy",
                processes=1,
            )
            t0 = _time.perf_counter()
            cold = tuner.tune(key)
            cold_s = _time.perf_counter() - t0
            t0 = _time.perf_counter()
            hit = tuner.tune(key)
            hit_s = _time.perf_counter() - t0
            if hit.source != "cache":
                raise AssertionError(
                    f"{label}: second resolution re-searched instead of "
                    "hitting the plan cache"
                )
            if hit.override != cold.override:
                raise AssertionError(
                    f"{label}: cached winner differs from the searched one"
                )

            rng = np.random.default_rng(20219 + m)
            a = rng.standard_normal((m, k)).astype(np.float32)
            b = rng.standard_normal((k, nn)).astype(np.float32)
            analytic = CakeGemm(machine, tuned=False).multiply(a, b)
            tuned_run = CakeGemm(
                machine, plan=cold.override, tuned=False
            ).multiply(a, b)
            if not np.array_equal(tuned_run.c, analytic.c):
                raise AssertionError(
                    f"{label}: tuned product drifted from the analytic plan"
                )
            speedup = cold.speedup or 1.0
            winner = (
                "analytic (no candidate beat it)"
                if cold.override is None
                else str(
                    {
                        f: v
                        for f, v in cold.override.as_dict().items()
                        if v is not None
                    }
                )
            )
            rows.append(
                [
                    label, f"{m}x{nn}x{k}", f"{speedup:.2f}x",
                    f"{cold_s * 1e3:.0f} ms", f"{hit_s * 1e3:.2f} ms",
                    winner,
                ]
            )
            rep.data.setdefault("speedups", {})[label] = speedup
            rep.data.setdefault("cold_seconds", {})[label] = cold_s
            rep.data.setdefault("hit_seconds", {})[label] = hit_s
            rep.data.setdefault("overrides", {})[label] = (
                None if cold.override is None else cold.override.as_dict()
            )
        from dataclasses import asdict as _asdict

        cache_stats = _asdict(tuner.cache.stats)
    rep.add_table(
        ["shape", "m x n x k", "tuned speedup", "cold tune", "cache hit",
         "winning override"],
        rows,
    )
    rep.add_line(
        "every tuned product bit-identical to the analytic plan; the "
        "second resolution is a cache hit (search skipped)"
    )
    rep.data["cache_stats"] = cache_stats
    return rep


EXPERIMENTS: dict[str, Callable[..., ExperimentReport]] = {
    "table2": table2_machines,
    "fig4": fig4_cb_scaling,
    "fig7a": fig7a_intel_stalls,
    "fig7b": fig7b_arm_accesses,
    "fig8": fig8_shape_contours,
    "fig9a": fig9a_intel_speedup,
    "fig9b": fig9b_arm_speedup,
    "fig10": fig10_intel_scaling,
    "fig11": fig11_arm_scaling,
    "fig12": fig12_amd_scaling,
    "verify": verify_overhead,
    "backends": backends_matrix,
    "sharded": sharded_execution,
    "serve": serve_load,
    "autotune": autotune,
}


def run_experiment(
    name: str, scale: str = "full", *, runtime=None
) -> ExperimentReport:
    """Run one experiment by id (including the ablations).

    A ``runtime`` (:class:`~repro.runtime.executor.ExperimentRuntime`)
    is forwarded to generators that support grid fan-out; experiments
    that are single cells (or predate the runtime) simply ignore it.

    When a collect-mode runtime ends a grid with permanently failed
    cells, the resulting
    :class:`~repro.runtime.outcome.IncompleteRunError` is re-raised
    tagged with this experiment's name; the completed cells are already
    checkpointed, so a rerun only executes what is missing.
    """
    import inspect

    from repro.bench.ablations import ABLATIONS

    registry = {**EXPERIMENTS, **ABLATIONS}
    try:
        fn = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(registry)}"
        ) from None
    if runtime is not None and "runtime" in inspect.signature(fn).parameters:
        from repro.runtime.outcome import IncompleteRunError

        try:
            return fn(scale, runtime=runtime)
        except IncompleteRunError as exc:
            raise IncompleteRunError(exc.report, experiment=name) from exc
    return fn(scale)
