"""``cake-plan``: inspect the analytic plan for a machine and problem.

The "no design search" pitch as a tool: print the CB operating point CAKE
derives for a problem — alpha, mc, block geometry — alongside the GOTO
tiling and the predicted performance of both, without executing anything.

Examples::

    cake-plan --machine intel-i9-10900k -m 23040 -n 23040 -k 23040
    cake-plan --machine arm-cortex-a53 -m 3000 -n 3000 -k 3000 --cores 2
    cake-plan --machine intel-i9-10900k -m 4096 -n 4096 -k 4096 --dram-gb-s 2
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.bench.report import format_table
from repro.gemm.plan import CakePlan, GotoPlan
from repro.machines.presets import PRESET_NAMES, preset
from repro.perfmodel.predict import predict_cake, predict_goto
from repro.schedule.space import ComputationSpace


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``cake-plan`` console script."""
    parser = argparse.ArgumentParser(
        prog="cake-plan",
        description="Show the analytic CAKE (and GOTO) tiling plan for a "
        "problem on a modelled machine.",
    )
    parser.add_argument(
        "--machine",
        default="intel-i9-10900k",
        choices=sorted(PRESET_NAMES),
    )
    parser.add_argument("-m", type=int, required=True, help="rows of A/C")
    parser.add_argument("-n", type=int, required=True, help="cols of B/C")
    parser.add_argument("-k", type=int, required=True, help="reduction dim")
    parser.add_argument("--cores", type=int, default=None)
    parser.add_argument(
        "--dram-gb-s",
        type=float,
        default=None,
        help="override the machine's DRAM bandwidth (what-if mode)",
    )
    args = parser.parse_args(argv)

    machine = preset(args.machine)
    if args.dram_gb_s is not None:
        machine = dataclasses.replace(machine, dram_gb_per_s=args.dram_gb_s)
    space = ComputationSpace(args.m, args.n, args.k)
    cores = machine.cores if args.cores is None else args.cores

    cake = CakePlan.from_problem(machine, space, cores=cores)
    goto = GotoPlan.from_problem(machine, space, cores=cores)
    cake_pred = predict_cake(machine, args.m, args.n, args.k, cores=cores)
    goto_pred = predict_goto(machine, args.m, args.n, args.k, cores=cores)

    print(f"{machine.name}, {cores} cores, "
          f"{machine.dram_gb_per_s:g} GB/s DRAM")
    print(f"problem: C[{args.m} x {args.n}] = "
          f"A[{args.m} x {args.k}] @ B[{args.k} x {args.n}]\n")

    grid = cake.grid()
    for line in format_table(
        ["engine", "tiling", "block / panel", "grid", "GFLOP/s", "DRAM GB/s"],
        [
            [
                "CAKE",
                f"alpha={cake.alpha:g} mc=kc={cake.mc}",
                f"{cake.m_block} x {cake.n_block} x {cake.kc}",
                f"{grid.mb} x {grid.nb} x {grid.kb}",
                f"{cake_pred.gflops:.0f}",
                f"{cake_pred.dram_gb_per_s:.2f}",
            ],
            [
                "GOTO",
                f"mc=kc={goto.mc} nc={goto.nc}",
                f"{goto.mc} x {goto.nc} x {goto.kc}",
                "-",
                f"{goto_pred.gflops:.0f}",
                f"{goto_pred.dram_gb_per_s:.2f}",
            ],
        ],
    ):
        print(line)

    bound = max(cake_pred.bound_blocks, key=cake_pred.bound_blocks.get)
    print(f"\nCAKE block-limiting resource (modal): {bound}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
