"""Core-count scaling series with extrapolation (Figures 10, 11, 12).

Each figure plots, against active cores: (a) observed DRAM bandwidth,
(b) computation throughput — solid within the physical core count,
dotted beyond it under the paper's extrapolation assumptions — and
(c) the machine's internal-bandwidth curve. :func:`scaling_series`
produces all of that from one machine spec and problem size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.extrapolate import extrapolated_machine
from repro.machines.spec import MachineSpec
from repro.perfmodel.optimal import cake_optimal_dram_gb_per_s
from repro.perfmodel.predict import PerfPrediction, predict_cake, predict_goto
from repro.util import require_positive


@dataclass(frozen=True, slots=True)
class ScalingPoint:
    """One core count's worth of a Figure 10/11/12 panel set."""

    cores: int
    extrapolated: bool
    cake: PerfPrediction
    goto: PerfPrediction
    cake_optimal_dram_gb_per_s: float
    internal_bw_gb_per_s: float


def scaling_series(
    machine: MachineSpec,
    n: int,
    *,
    max_physical_cores: int | None = None,
    extrapolate_to: int | None = None,
    core_step: int = 1,
    runtime=None,
) -> list[ScalingPoint]:
    """The full panel data for one platform's scaling figure.

    Within ``max_physical_cores`` the real machine is used; beyond it,
    cores come from :func:`~repro.machines.extrapolate.extrapolated_machine`
    (quadratic LLC, linearised internal bandwidth, fixed DRAM bandwidth).

    With a ``runtime``, both engines' predictions at every core count run
    as experiment tasks; tasks encode the grown machine via their
    ``extrapolate_cores`` field (``extrapolated_machine`` restricts to
    ``with_cores`` below the physical count, so one encoding covers both
    the solid and dotted regions exactly).
    """
    require_positive("n", n)
    physical = (
        machine.cores if max_physical_cores is None else max_physical_cores
    )
    top = physical if extrapolate_to is None else extrapolate_to
    core_counts = list(range(core_step, top + 1, core_step))
    specs = {
        cores: (
            extrapolated_machine(machine, cores)
            if cores > physical
            else machine.with_cores(cores)
        )
        for cores in core_counts
    }

    if runtime is not None:
        from repro.runtime.outcome import ensure_rows
        from repro.runtime.task import (
            ExperimentTask,
            machine_key,
            prediction_from_row,
        )

        key = machine_key(machine)
        # ensure_rows unwraps collect-mode RunReports and raises
        # IncompleteRunError when any core count permanently failed.
        rows = ensure_rows(
            runtime.run(
                [
                    ExperimentTask(
                        kind="predict", engine=engine, machine=key,
                        m=n, n=n, k=n, extrapolate_cores=cores,
                    )
                    for cores in core_counts
                    for engine in ("cake", "goto")
                ]
            )
        )
        predictions = {
            (row["extrapolate_cores"], row["engine"]): prediction_from_row(row)
            for row in rows
        }
    else:
        predictions = {}
        for cores in core_counts:
            spec = specs[cores]
            predictions[(cores, "cake")] = predict_cake(spec, n, n, n)
            predictions[(cores, "goto")] = predict_goto(spec, n, n, n)

    points: list[ScalingPoint] = []
    for cores in core_counts:
        spec = specs[cores]
        points.append(
            ScalingPoint(
                cores=cores,
                extrapolated=cores > physical,
                cake=predictions[(cores, "cake")],
                goto=predictions[(cores, "goto")],
                cake_optimal_dram_gb_per_s=cake_optimal_dram_gb_per_s(
                    spec, m=n, n=n, k=n
                ),
                internal_bw_gb_per_s=spec.internal_bw.bandwidth_gb_per_s(cores),
            )
        )
    return points
