"""Vectorized batch analyzer: the engines' schedule walk without the loop.

:meth:`CakeGemm.analyze` and :meth:`GotoGemm.analyze` price thousands of
blocks per call, and the figure sweeps call them thousands of times — the
Figure 8 contour grid alone walks tens of millions of blocks through
per-block Python. This module reproduces each engine's analytic walk as a
handful of NumPy passes over structure-of-arrays data:

* the block order comes from the vectorized enumerators
  (:func:`repro.schedule.kfirst.kfirst_order_arrays`);
* per-block geometry comes from one gather per axis
  (:meth:`repro.schedule.space.BlockGrid.surface_arrays`);
* CAKE's capacity-LRU residency runs through
  :func:`repro.schedule.reuse.surface_lru_replay` (the grouped-replay
  technique of :mod:`repro.memsim.vectorized`);
* roofline pricing runs through
  :func:`repro.perfmodel.roofline.block_times_batch`.

The contract is **bit-for-bit equivalence**, not approximation: integer
counters are identical to the scalar walk's, and every float (per-block
seconds, the accumulated :class:`BlockTime`, ``tile_cycles``) is produced
by the same IEEE operations in the same order, so even golden-file tests
that pin formatted output cannot tell the paths apart. The scalar walk
remains available behind the engines' ``exact_walk=True`` flag and is the
oracle the equivalence tests run against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gemm.counters import TrafficCounters
from repro.gemm.plan import CakePlan, GotoPlan
from repro.gemm.result import GemmRun
from repro.machines.spec import MachineSpec
from repro.packing.cost import packing_cost
from repro.perfmodel.roofline import block_times_batch
from repro.schedule.kfirst import kfirst_order_arrays
from repro.schedule.reuse import (
    encode_surface_ids,
    occurrence_index,
    surface_lru_replay,
)
from repro.schedule.space import ComputationSpace
from repro.util import split_length


def _ceil_div_arr(numerator: np.ndarray, denominator) -> np.ndarray:
    """Elementwise :func:`repro.util.ceil_div` for positive operands."""
    return -(-numerator // denominator)


def _sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float accumulation, as the scalar walk's ``+=`` does.

    ``np.sum`` uses pairwise accumulation, which differs from a running
    sum at the ulp level — enough to break the bit-exactness contract.
    """
    total = 0.0
    for value in values.tolist():
        total += value
    return total


def _hit_flags(raw: bytearray) -> np.ndarray:
    return np.frombuffer(raw, dtype=np.uint8).astype(bool)


def analyze_cake_batch(
    machine: MachineSpec,
    space: ComputationSpace,
    *,
    cores: int | None = None,
    alpha: float | None = None,
    plan: CakePlan | None = None,
    schedule: str = "k-first",
) -> GemmRun:
    """CAKE's analytic walk (:meth:`CakeGemm.analyze`), batched.

    Identical accounting to ``CakeGemm(...)._run(space)`` — the same plan,
    the same K-first order, the same LRU residency decisions, the same
    roofline pricing — with the per-block Python loop replaced by array
    passes plus one tight replay loop for the LRU.

    The autotuner prices candidate plans through the same walk: ``plan``
    supplies an explicit (possibly overridden) :class:`CakePlan` in place
    of the analytic derivation, and ``schedule`` selects a block-order
    variant (:mod:`repro.schedule.variants`). Only reduction-complete
    orders (``k-first``, ``naive``) keep the no-spill contract; spilling
    variants are priced with their C round-trips charged.
    """
    if plan is None:
        plan = CakePlan.from_problem(machine, space, cores=cores, alpha=alpha)
    grid = plan.grid()
    if schedule == "k-first":
        order = kfirst_order_arrays(grid)
    else:
        from repro.schedule.variants import build_order_arrays

        order = build_order_arrays(schedule, grid)
    mi, ni, ki = order.mi, order.ni, order.ki
    sa, sb, sc = grid.surface_arrays(mi, ni, ki)

    counters = TrafficCounters()
    counters.ext_pack = 2 * (space.m * space.k + space.k * space.n)
    pack = packing_cost(machine, space.m * space.k, space.k * space.n)
    counters.macs = space.macs

    # Residency: replay the exact LRU the scalar walk drives. C-surface
    # occurrence counts stand in for the walk's ``progress`` dict.
    occ = occurrence_index(mi * grid.nb + ni)
    final = occ == grid.kb - 1
    a_ids, b_ids, c_ids, c_base = encode_surface_ids(grid, order)
    a_hit_raw, b_hit_raw, c_hit_raw, spill = surface_lru_replay(
        a_ids.tolist(),
        b_ids.tolist(),
        c_ids.tolist(),
        sa.tolist(),
        sb.tolist(),
        sc.tolist(),
        final.tolist(),
        plan.residency_elements,
        c_base,
    )
    a_hit = _hit_flags(a_hit_raw)
    b_hit = _hit_flags(b_hit_raw)
    c_hit = _hit_flags(c_hit_raw)

    a_el = np.where(a_hit, 0, sa)
    b_el = np.where(b_hit, 0, sb)
    c_write_el = np.where(final, sc, 0)
    counters.ext_a_read = int(a_el.sum())
    counters.ext_b_read = int(b_el.sum())
    counters.ext_c_read = int(sc[~c_hit & (occ > 0)].sum())
    counters.ext_c_write = int(c_write_el.sum())
    counters.ext_c_spill = spill

    # Per-core strip split: closed form of _core_strips per M-extent.
    m_sizes, n_sizes, k_sizes = grid.size_arrays()
    chunk_m = _ceil_div_arr(m_sizes, plan.cores)  # == max(strips)
    active_m = _ceil_div_arr(m_sizes, chunk_m)  # == len(strips)
    tiles_m = _ceil_div_arr(chunk_m, machine.mr)
    tiles_n = _ceil_div_arr(n_sizes, machine.nr)
    depth = k_sizes / plan.kc
    cycles = (tiles_m[mi] * tiles_n[ni]) * depth[ki]
    active = active_m[mi]
    counters.tile_cycles = _sequential_sum(cycles)

    internal = sa + active * sb + 2 * sc
    counters.internal = int(internal.sum())

    if schedule in ("k-first", "naive") and (
        counters.ext_c_spill or counters.ext_c_read
    ):  # pragma: no cover
        raise ConfigurationError(
            "CAKE's reduction-complete schedules must never spill partial"
            " results"
        )

    batch = block_times_batch(
        machine,
        active_cores=active,
        tile_cycles=cycles,
        kc=plan.kc,
        ext_bytes=(a_el + b_el + c_write_el) * machine.element_bytes,
        int_elements=internal,
    )

    return GemmRun(
        engine="cake",
        machine=machine,
        space=space,
        cores=plan.cores,
        counters=counters,
        time=batch.total(),
        packing_seconds=pack.seconds,
        bound_blocks=batch.bound_tallies(),
        plan_summary={
            "alpha": plan.alpha,
            "mc": plan.mc,
            "kc": plan.kc,
            "m_block": plan.m_block,
            "n_block": plan.n_block,
            "blocks": grid.num_blocks,
        },
        c=None,
    )


def analyze_goto_batch(
    machine: MachineSpec,
    space: ComputationSpace,
    *,
    cores: int | None = None,
    plan: GotoPlan | None = None,
) -> GemmRun:
    """GOTO's analytic walk (:meth:`GotoGemm.analyze`), batched.

    The GOTO loop nest has no LRU state, so the whole walk collapses to
    broadcasting over a ``(n-panels, k-slices, waves)`` lattice: wave
    geometry (rows, tallest strip, active cores) is one ``reduceat`` pass
    over the M strips, and every counter is a masked sum over the lattice
    flattened in the scalar loop-nest order. ``plan`` substitutes an
    explicit (possibly overridden) :class:`GotoPlan` for the analytic one.
    """
    if plan is None:
        plan = GotoPlan.from_problem(machine, space, cores=cores)

    counters = TrafficCounters()
    counters.ext_pack = 2 * (space.m * space.k + space.k * space.n)
    pack = packing_cost(machine, space.m * space.k, space.k * space.n)
    counters.macs = space.macs

    m_strips = np.asarray(
        split_length(space.m, min(plan.mc, space.m)), dtype=np.int64
    )
    n_sizes = np.asarray(
        split_length(space.n, min(plan.nc, space.n)), dtype=np.int64
    )
    k_sizes = np.asarray(
        split_length(space.k, min(plan.kc, space.k)), dtype=np.int64
    )

    starts = np.arange(0, len(m_strips), plan.cores, dtype=np.int64)
    wave_rows = np.add.reduceat(m_strips, starts)
    wave_max = np.maximum.reduceat(m_strips, starts)
    wave_active = np.diff(np.append(starts, len(m_strips)))

    n_panels, k_slices, waves = len(n_sizes), len(k_sizes), len(starts)
    lattice = (n_panels, k_slices, waves)
    nc_a = n_sizes[:, None, None]
    kc_a = k_sizes[None, :, None]
    rows = wave_rows[None, None, :]

    a_el = np.broadcast_to(rows * kc_a, lattice)
    b_el = kc_a * nc_a  # broadcasts over waves; fetched once per (ni, ki)
    c_el = np.broadcast_to(rows * nc_a, lattice)
    first_wave = np.zeros(waves, dtype=bool)
    first_wave[0] = True
    b_pending = np.where(first_wave[None, None, :], b_el, 0)
    ki_idx = np.arange(k_slices, dtype=np.int64)[None, :, None]
    last_slice = k_slices - 1
    c_read_el = np.where(ki_idx > 0, c_el, 0)

    counters.ext_a_read = int(a_el.sum())
    counters.ext_b_read = int((n_sizes[:, None] * k_sizes[None, :]).sum())
    counters.ext_c_write = int(c_el[:, last_slice, :].sum())
    counters.ext_c_spill = int(c_el[:, :last_slice, :].sum())
    counters.ext_c_read = int(c_read_el.sum())

    tiles_m = _ceil_div_arr(wave_max, machine.mr)[None, None, :]
    tiles_n = _ceil_div_arr(n_sizes, machine.nr)[:, None, None]
    cycles = np.broadcast_to(
        (tiles_m * tiles_n) * (kc_a / plan.kc), lattice
    ).reshape(-1)
    counters.tile_cycles = _sequential_sum(cycles)

    active = np.broadcast_to(wave_active[None, None, :], lattice)
    internal = a_el + active * b_el + 2 * c_el
    counters.internal = int(internal.sum())

    ext_bytes = (a_el + b_pending + c_el + c_read_el) * machine.element_bytes
    batch = block_times_batch(
        machine,
        active_cores=active.reshape(-1),
        tile_cycles=cycles,
        kc=plan.kc,
        ext_bytes=np.broadcast_to(ext_bytes, lattice).reshape(-1),
        int_elements=np.broadcast_to(internal, lattice).reshape(-1),
    )

    return GemmRun(
        engine="goto",
        machine=machine,
        space=space,
        cores=plan.cores,
        counters=counters,
        time=batch.total(),
        packing_seconds=pack.seconds,
        bound_blocks=batch.bound_tallies(),
        plan_summary={
            "mc": plan.mc,
            "kc": plan.kc,
            "nc": plan.nc,
            "m_strips": len(m_strips),
        },
        c=None,
    )
