"""Matrix-shape sweeps (Figure 8).

Figure 8 varies M (tied to N by an aspect ratio) and K over a grid and
contours the ratio of CAKE throughput to MKL throughput. The grid here
mirrors that: for each ``(m_index, k_index)`` cell we predict both engines
and record ``cake_gflops / goto_gflops``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.spec import MachineSpec
from repro.perfmodel.predict import predict_cake, predict_goto
from repro.util import require_positive


@dataclass(frozen=True, slots=True)
class ShapeSweepResult:
    """A Figure 8 panel: CAKE/GOTO throughput ratio over (M, K)."""

    machine_name: str
    aspect: float  # M = aspect * N
    m_values: tuple[int, ...]
    k_values: tuple[int, ...]
    ratio: np.ndarray  # shape (len(k_values), len(m_values))

    def fraction_above(self, threshold: float) -> float:
        """Share of grid cells where CAKE beats GOTO by >= threshold."""
        return float(np.mean(self.ratio >= threshold))

    def ratio_at(self, m: int, k: int) -> float:
        """Ratio at the grid point closest to (m, k)."""
        mi = int(np.argmin(np.abs(np.array(self.m_values) - m)))
        ki = int(np.argmin(np.abs(np.array(self.k_values) - k)))
        return float(self.ratio[ki, mi])


def relative_throughput_grid(
    machine: MachineSpec,
    *,
    aspect: float = 1.0,
    m_values: tuple[int, ...] = (1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000),
    k_values: tuple[int, ...] = (1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000),
    cores: int | None = None,
    runtime=None,
) -> ShapeSweepResult:
    """One Figure 8 panel: ``M = aspect * N`` with M and K swept.

    ``aspect`` of 1, 2, 4, 8 reproduces panels (a)-(d). With a
    ``runtime`` (:class:`~repro.runtime.executor.ExperimentRuntime`) the
    CAKE/GOTO pair grid is fanned out as experiment tasks — parallel,
    memoized, and byte-identical to the inline loop.
    """
    require_positive("aspect", aspect)
    cells = [
        (ki, mi, m, max(int(round(m / aspect)), 1), k)
        for ki, k in enumerate(k_values)
        for mi, m in enumerate(m_values)
    ]
    ratio = np.empty((len(k_values), len(m_values)))
    if runtime is not None:
        from repro.runtime.outcome import ensure_rows
        from repro.runtime.task import ExperimentTask, machine_key

        key = machine_key(machine)
        tasks = [
            ExperimentTask(
                kind="predict", engine=engine, machine=key,
                m=m, n=n, k=k, cores=cores,
            )
            for _, _, m, n, k in cells
            for engine in ("cake", "goto")
        ]
        # A collect-mode runtime hands back a RunReport; the grid needs
        # every cell, so missing rows surface as IncompleteRunError (the
        # completed cells are already checkpointed in the cache).
        rows = ensure_rows(runtime.run(tasks))
        for cell_index, (ki, mi, _, _, _) in enumerate(cells):
            cake_row, goto_row = rows[2 * cell_index], rows[2 * cell_index + 1]
            ratio[ki, mi] = cake_row["gflops"] / goto_row["gflops"]
    else:
        for ki, mi, m, n, k in cells:
            cake = predict_cake(machine, m, n, k, cores=cores)
            goto = predict_goto(machine, m, n, k, cores=cores)
            ratio[ki, mi] = cake.gflops / goto.gflops
    return ShapeSweepResult(
        machine_name=machine.name,
        aspect=aspect,
        m_values=tuple(m_values),
        k_values=tuple(k_values),
        ratio=ratio,
    )
