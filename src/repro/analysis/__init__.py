"""Analysis helpers behind the evaluation figures.

:mod:`repro.analysis.speedup` — the ``t_1 / t_p`` speedup series of
Figure 9; :mod:`repro.analysis.scaling` — the core-count sweeps with
extrapolated machines of Figures 10-12; :mod:`repro.analysis.sweep` — the
matrix-shape grids behind Figure 8's contours. All of them price their
engine predictions through :mod:`repro.analysis.batch`, the vectorized
(and bit-identical) form of the engines' analytic schedule walk.
"""

from repro.analysis.batch import analyze_cake_batch, analyze_goto_batch
from repro.analysis.speedup import SpeedupSeries, speedup_series
from repro.analysis.scaling import ScalingPoint, scaling_series
from repro.analysis.sweep import ShapeSweepResult, relative_throughput_grid
from repro.analysis.roofline import (
    RooflineCurve,
    RooflinePoint,
    classify_point,
    operating_point,
    roofline_curve,
)
from repro.analysis.crossover import (
    Crossover,
    find_crossover_size,
    throughput_ratio,
)

__all__ = [
    "analyze_cake_batch",
    "analyze_goto_batch",
    "SpeedupSeries",
    "speedup_series",
    "ScalingPoint",
    "scaling_series",
    "ShapeSweepResult",
    "relative_throughput_grid",
    "RooflineCurve",
    "RooflinePoint",
    "classify_point",
    "operating_point",
    "roofline_curve",
    "Crossover",
    "find_crossover_size",
    "throughput_ratio",
]
