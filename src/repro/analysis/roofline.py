"""Roofline chart data: attainable throughput vs arithmetic intensity.

The classic visualisation of the memory wall, built from a MachineSpec:
``attainable(AI) = min(peak_compute, AI * DRAM_bandwidth)``. CAKE's whole
premise in one picture — its CB blocks *move* a kernel's operating point
rightward (higher AI at constant bandwidth) until it exits the
bandwidth-limited region, while GOTO's partial-C streaming pins the point
further left. :func:`operating_point` places a finished
:class:`~repro.gemm.result.GemmRun` on the chart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gemm.result import GemmRun
from repro.machines.spec import MachineSpec
from repro.util import require_positive


@dataclass(frozen=True, slots=True)
class RooflinePoint:
    """One kernel on the roofline chart.

    Whether it is memory- or compute-bound is a property of the chart it
    sits on, not of the point — see :func:`classify_point`.
    """

    label: str
    arithmetic_intensity: float  # FLOPs per DRAM byte
    gflops: float


@dataclass(frozen=True, slots=True)
class RooflineCurve:
    """The machine's ceiling: compute roof and bandwidth diagonal."""

    machine_name: str
    peak_gflops: float
    dram_gb_per_s: float
    intensities: tuple[float, ...]
    attainable_gflops: tuple[float, ...]

    @property
    def ridge_intensity(self) -> float:
        """AI at which the diagonal meets the roof (FLOPs/byte)."""
        return self.peak_gflops / self.dram_gb_per_s


def roofline_curve(
    machine: MachineSpec,
    *,
    cores: int | None = None,
    ai_min: float = 0.125,
    ai_max: float = 1024.0,
    points: int = 64,
) -> RooflineCurve:
    """Sample the machine's roofline over a log-spaced AI range."""
    require_positive("ai_min", ai_min)
    if ai_max <= ai_min:
        raise ValueError(f"ai_max {ai_max} must exceed ai_min {ai_min}")
    require_positive("points", points)
    cores = machine.cores if cores is None else cores
    peak = machine.peak_gflops(cores)
    bw = machine.dram_gb_per_s * machine.dram_efficiency
    ais = np.geomspace(ai_min, ai_max, points)
    attainable = np.minimum(peak, ais * bw)
    return RooflineCurve(
        machine_name=machine.name,
        peak_gflops=peak,
        dram_gb_per_s=bw,
        intensities=tuple(float(x) for x in ais),
        attainable_gflops=tuple(float(x) for x in attainable),
    )


def operating_point(run: GemmRun, label: str | None = None) -> RooflinePoint:
    """Place a finished run on the chart (AI from *physical* DRAM bytes)."""
    return RooflinePoint(
        label=label or run.engine,
        arithmetic_intensity=run.arithmetic_intensity,
        gflops=run.gflops,
    )


def classify_point(curve: RooflineCurve, point: RooflinePoint) -> str:
    """Which side of the ridge the kernel sits on."""
    return (
        "memory-bound"
        if point.arithmetic_intensity < curve.ridge_intensity
        else "compute-bound"
    )
