"""Crossover finder: where does CAKE's advantage fade to parity?

Figure 8's narrative in one number: below some problem size the MM is
memory-bound and CAKE beats the GOTO baseline by a wide margin; above it
the two converge. :func:`find_crossover_size` bisects the square-problem
axis for the size at which the CAKE/GOTO throughput ratio first drops to
a target (e.g. 1.1x), per machine — "where the crossovers fall" is one of
the reproduction's explicit checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.spec import MachineSpec
from repro.perfmodel.predict import predict_cake, predict_goto
from repro.util import require_positive


@dataclass(frozen=True, slots=True)
class Crossover:
    """Result of a crossover search."""

    machine_name: str
    threshold: float
    size: int | None  # None: the ratio never drops below the threshold
    ratio_at_size: float


def throughput_ratio(machine: MachineSpec, n: int, *, cores: int | None = None) -> float:
    """CAKE/GOTO throughput ratio for a square ``n^3`` MM."""
    cake = predict_cake(machine, n, n, n, cores=cores)
    goto = predict_goto(machine, n, n, n, cores=cores)
    return cake.gflops / goto.gflops

def find_crossover_size(
    machine: MachineSpec,
    *,
    threshold: float = 1.1,
    lo: int = 256,
    hi: int = 16384,
    tolerance: int = 256,
    cores: int | None = None,
) -> Crossover:
    """Smallest square size in ``[lo, hi]`` where the ratio <= threshold.

    The ratio is noisy (tiling-edge sawtooth), so the search bisects on a
    smoothed predicate: the mean ratio of three nearby sizes. Returns
    ``size=None`` when even ``hi`` stays above the threshold — on
    bandwidth-starved machines (the ARM A53, the NVM system) CAKE's
    advantage never fades, which is itself the paper's claim.
    """
    require_positive("threshold", threshold)
    if not lo < hi:
        raise ValueError(f"need lo < hi, got {lo} >= {hi}")

    def smoothed(n: int) -> float:
        sizes = (max(n - tolerance // 2, 64), n, n + tolerance // 2)
        return sum(throughput_ratio(machine, s, cores=cores) for s in sizes) / 3

    if smoothed(hi) > threshold:
        return Crossover(machine.name, threshold, None, smoothed(hi))
    if smoothed(lo) <= threshold:
        return Crossover(machine.name, threshold, lo, smoothed(lo))

    low, high = lo, hi
    while high - low > tolerance:
        mid = (low + high) // 2
        if smoothed(mid) <= threshold:
            high = mid
        else:
            low = mid
    return Crossover(machine.name, threshold, high, smoothed(high))
