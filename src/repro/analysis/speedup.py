"""Speedup-versus-cores series (Figure 9).

The paper defines speedup for a fixed-size MM at ``p`` cores as
``t_1 / t_p`` — throughput relative to a single core of the same engine —
which lets CAKE and the vendor library be compared across platforms on a
common axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.spec import MachineSpec
from repro.perfmodel.predict import predict_cake, predict_goto
from repro.util import require_positive


@dataclass(frozen=True, slots=True)
class SpeedupSeries:
    """One engine's speedup curve for one problem size."""

    engine: str
    machine_name: str
    n: int
    cores: tuple[int, ...]
    seconds: tuple[float, ...]

    @property
    def speedups(self) -> tuple[float, ...]:
        """``t_1 / t_p`` for each measured core count.

        Normalised to the 1-core time when present, else to the first
        point (making that point's speedup exactly 1).
        """
        t1 = (
            self.seconds[self.cores.index(1)]
            if 1 in self.cores
            else self.seconds[0]
        )
        return tuple(t1 / s for s in self.seconds)


def speedup_series(
    machine: MachineSpec,
    n: int,
    *,
    engine: str,
    max_cores: int | None = None,
    runtime=None,
) -> SpeedupSeries:
    """Speedup curve for a square ``n x n x n`` MM on ``machine``.

    ``engine`` is ``"cake"`` or ``"goto"``. Cores sweep 1..max_cores.
    With a ``runtime``, the per-core-count predictions run as experiment
    tasks (parallel and memoized) instead of an inline loop.
    """
    require_positive("n", n)
    if engine not in ("cake", "goto"):
        raise ValueError(f"engine must be 'cake' or 'goto', got {engine!r}")
    max_cores = machine.cores if max_cores is None else max_cores
    cores = tuple(range(1, max_cores + 1))
    if runtime is not None:
        from repro.runtime.outcome import ensure_rows
        from repro.runtime.task import ExperimentTask, machine_key

        key = machine_key(machine)
        # ensure_rows unwraps collect-mode RunReports and raises
        # IncompleteRunError when any core count permanently failed.
        rows = ensure_rows(
            runtime.run(
                [
                    ExperimentTask(
                        kind="predict", engine=engine, machine=key,
                        m=n, n=n, k=n, cores=p,
                    )
                    for p in cores
                ]
            )
        )
        seconds = tuple(row["seconds"] for row in rows)
    elif engine == "cake":
        seconds = tuple(
            predict_cake(machine, n, n, n, cores=p).seconds for p in cores
        )
    else:
        seconds = tuple(
            predict_goto(machine, n, n, n, cores=p).seconds for p in cores
        )
    return SpeedupSeries(
        engine=engine,
        machine_name=machine.name,
        n=n,
        cores=cores,
        seconds=seconds,
    )
