"""Simulated hardware modules: external memory, local memory, cores.

Module contract: the system delivers packets to :meth:`Module.receive` in
timestamp order; modules react by scheduling further sends through the
system. All inter-module transfers go through
:meth:`~repro.archsim.system.CakeSystem.send`, which honours each packet's
source route — no module knows the topology beyond the routes written
into the packets it originates (Section 6.2's modularity argument).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.archsim.packet import Packet
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.archsim.system import CakeSystem


class Module:
    """Base class: a named packet sink attached to a system."""

    def __init__(self, name: str, system: "CakeSystem") -> None:
        self.name = name
        self.system = system

    def receive(self, pkt: Packet) -> None:  # pragma: no cover
        raise NotImplementedError


class ExternalMemory(Module):
    """DRAM: originates input tiles, absorbs results, meters bandwidth.

    A single outgoing serialiser enforces the configured external
    bandwidth: packet ``i`` departs no earlier than the previous packet's
    departure plus ``elements / bw`` cycles — the constant-rate streaming
    the CB analysis assumes.
    """

    def __init__(self, name: str, system: "CakeSystem", bw_tiles_per_cycle: float) -> None:
        super().__init__(name, system)
        if bw_tiles_per_cycle <= 0:
            raise ValueError("external bandwidth must be positive")
        self.bw = bw_tiles_per_cycle
        self.tiles_sent = 0
        self.tiles_received = 0
        self.results: dict[tuple[int, int], float] = {}

    def receive(self, pkt: Packet) -> None:
        if pkt.kind != "C":
            raise SimulationError(
                f"external memory received unexpected {pkt.kind} packet"
            )
        self.tiles_received += pkt.elements
        self.results[(pkt.row, pkt.t)] = pkt.value


class LocalMemory(Module):
    """The shared local memory (LLC analogue) of Figure 1 / Section 3.

    Forwards A tiles to their cores, broadcasts B tiles down core
    columns, holds the partial-result surface across the blocks of a
    reduction run, and emits completed C tiles back to external memory.
    """

    def __init__(self, name: str, system: "CakeSystem") -> None:
        super().__init__(name, system)
        # Partial C surface, keyed by global (row, n) tile coordinates.
        self.partials: dict[tuple[int, int], float] = {}
        # Accumulations received per (mi, ni) run, to detect completion.
        self._run_received: dict[tuple[int, int], int] = {}
        self._run_expected: dict[tuple[int, int], int] = {}
        self._run_blocks_seen: dict[tuple[int, int], set[int]] = {}

    def expect_run(self, mi: int, ni: int, expected: int) -> None:
        """Arm completion detection for the (mi, ni) reduction run."""
        self._run_expected[(mi, ni)] = expected
        self._run_received.setdefault((mi, ni), 0)

    def receive(self, pkt: Packet) -> None:
        if pkt.kind == "A":
            # Stationary-tile load: one port transfer to its core.
            departure = self.system.local_port_delay(pkt.elements)
            core = self.system.core_name(pkt.row, pkt.col)
            self.system.send_at(
                pkt.redirect(core), departure + self.system.link_latency
            )
        elif pkt.kind == "B":
            # Broadcast to every active core in the column. The port is
            # charged ONCE per tile (Eq. 3 counts the broadcast once);
            # all copies depart together when the port frees up.
            departure = self.system.local_port_delay(pkt.elements)
            rows = self.system.active_rows(pkt.block)
            for i in range(rows):
                core = self.system.core_name(i, pkt.col)
                self.system.send_at(
                    pkt.redirect(core), departure + self.system.link_latency
                )
        elif pkt.kind == "PARTIAL":
            # Accumulating a partial reads and rewrites the running sum:
            # two port transfers (the "2 * IO_C" term of Eq. 3).
            departure = self.system.local_port_delay(2 * pkt.elements)
            self.system.sim.at(departure, lambda: self._absorb_partial(pkt))
        else:
            raise SimulationError(f"local memory cannot handle {pkt.kind}")

    def _absorb_partial(self, pkt: Packet) -> None:
        key = (pkt.row, pkt.t)  # global tile coordinates (set by the core row map)
        self.partials[key] = self.partials.get(key, 0.0) + pkt.value
        run = self.system.run_of(pkt.block)
        self._run_received[run] = self._run_received.get(run, 0) + 1
        self.system.note_block_progress(pkt.block)
        expected = self._run_expected.get(run)
        if expected is not None and self._run_received[run] == expected:
            self._flush_run(run)

    def _flush_run(self, run: tuple[int, int]) -> None:
        """The run's reduction is complete: write its C tiles back."""
        for (row, t) in self.system.run_c_tiles(run):
            value = self.partials.pop((row, t))
            pkt = Packet(
                kind="C",
                route=(self.system.ext_name,),
                block=self.system.last_block_of_run(run),
                row=row,
                t=t,
                value=value,
            )
            self.system.send(pkt, self.system.link_latency)


class Core(Module):
    """One processing core of the grid (Figure 3b).

    Holds a stationary A tile, retires one tile multiply per cycle, and
    forwards the running sum along its row's accumulation chain (toward
    higher K, i.e. the back of the computation space).
    """

    def __init__(self, name: str, system: "CakeSystem", row: int, col: int) -> None:
        super().__init__(name, system)
        self.row = row
        self.col = col
        self.a_value = 0.0
        self.a_loaded = False
        self._busy_until = 0.0
        self._queue: deque[Packet] = deque()
        self._processing = False
        # Products waiting for the left neighbour's partial, and vice versa.
        self._products: dict[tuple[int, int, int, int], float] = {}
        self._partials_in: dict[tuple[int, int, int, int], float] = {}
        self.multiplies = 0

    def receive(self, pkt: Packet) -> None:
        if pkt.kind == "PARTIAL":
            # The partial carries this core's (row, t) coordinates.
            self._match(pkt_key(pkt.block, pkt.row, pkt.t), partial=pkt.value, pkt=pkt)
            return
        self._queue.append(pkt)
        if not self._processing:
            self._pump()

    # -- serial input processing (1 multiply per cycle) ---------------------

    def _pump(self) -> None:
        if not self._queue:
            self._processing = False
            return
        self._processing = True
        pkt = self._queue.popleft()
        now = self.system.sim.now
        if pkt.kind == "A":
            # Loading the stationary tile is overlapped with streaming.
            self.a_value = pkt.value
            self.a_loaded = True
            self.system.sim.at(now, self._pump)
        elif pkt.kind == "B":
            if not self.a_loaded:
                raise SimulationError(
                    f"{self.name} got a B tile before its A tile"
                )
            start = max(now, self._busy_until)
            self._busy_until = start + 1.0
            product = self.a_value * pkt.value
            self.system.sim.at(
                self._busy_until, lambda: self._finish_multiply(pkt, product)
            )
        else:
            raise SimulationError(f"{self.name} cannot handle {pkt.kind}")

    def _finish_multiply(self, pkt: Packet, product: float) -> None:
        self.multiplies += 1
        if self.col == 0:
            self._emit(pkt, product)
        else:
            self._match(
                pkt_key(pkt.block, self.row, pkt.t), product=product, pkt=pkt
            )
        self._pump()

    # -- accumulation chain ----------------------------------------------------

    def _match(
        self,
        key: tuple[int, int, int, int],
        *,
        product: float | None = None,
        partial: float | None = None,
        pkt: Packet,
    ) -> None:
        """Pair a local product with the incoming partial sum.

        The add itself is overlapped with multiplication (Section 3's
        assumption), so pairing costs no core time — only link latency.
        """
        if product is not None:
            if key in self._partials_in:
                self._emit(pkt, product + self._partials_in.pop(key))
            else:
                self._products[key] = product
        if partial is not None:
            if key in self._products:
                self._emit(pkt, self._products.pop(key) + partial)
            else:
                self._partials_in[key] = partial

    def _emit(self, pkt: Packet, value: float) -> None:
        """Send the running sum right, or to local memory if last column."""
        last_col = self.system.active_cols(pkt.block) - 1
        if self.col == last_col:
            out = Packet(
                kind="PARTIAL",
                route=(self.system.local_name,),
                block=pkt.block,
                row=self.system.global_row(pkt.block, self.row),
                col=self.col,
                t=self.system.global_t(pkt.block, pkt.t),
                value=value,
            )
        else:
            out = Packet(
                kind="PARTIAL",
                route=(self.system.core_name(self.row, self.col + 1),),
                block=pkt.block,
                row=self.row,
                col=self.col + 1,
                t=pkt.t,
                value=value,
            )
        self.system.send(out, self.system.link_latency)


def pkt_key(block, row: int, t: int) -> tuple[int, int, int, int, int]:
    """Accumulation pairing key: block identity plus core row and N index."""
    return (block.mi, block.ni, block.ki, row, t)
