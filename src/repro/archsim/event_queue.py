"""The discrete-event core: a time-ordered callback queue.

Deliberately minimal — the SystemC role here is just "run callbacks in
timestamp order with a stable tie-break". Determinism matters for
reproducibility: ties are broken by insertion sequence, so a simulation is
a pure function of its inputs.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from repro.errors import SimulationError


class Simulator:
    """Event queue with a monotonically advancing clock (in cycles)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute ``time`` (>= now)."""
        if time < self.now - 1e-9:
            raise SimulationError(
                f"event scheduled at {time} but the clock is already at {self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, fn))
        self._seq += 1

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` ``delay`` cycles from now (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, fn)

    def run(
        self, *, until: float = math.inf, max_events: int = 50_000_000
    ) -> float:
        """Drain the queue (up to ``until``); returns the final clock.

        ``max_events`` is a runaway guard: exceeding it raises
        :class:`~repro.errors.SimulationError` instead of hanging.
        """
        processed = 0
        while self._queue and self._queue[0][0] <= until:
            time, _, fn = heapq.heappop(self._queue)
            self.now = max(self.now, time)
            fn()
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events — likely livelock"
                )
        self.events_processed += processed
        return self.now

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)
