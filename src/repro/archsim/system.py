"""Wiring and orchestration: a core grid executing a CB-partitioned MM.

:class:`CakeSystem` builds the Figure 3b machine — external memory, local
memory, and a ``rows x cols`` grid of cores — then executes a full matrix
multiplication partitioned into CB blocks of ``rows x n_block x cols``
tiles, scheduled K-first (Algorithm 2). Tiles are scalars at this
granularity, so "tile index" means matrix element index and numerical
correctness is checked end to end.

Surface reuse is physical: an A tile already sitting in its core (same
``(mi, ki)`` as the previous block) is not re-streamed, matching the
turn-reuse claims of Section 2.2; partial C surfaces live in local memory
until their reduction run completes.

Timing validation (Section 3): with external bandwidth ``BW`` tiles/cycle,
a full interior block should take about ``max(n_block, (IO_A + IO_B)/BW)``
cycles in steady state — tests compare the simulator's measured block
times against that closed form across bandwidth settings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.archsim.event_queue import Simulator
from repro.archsim.modules import Core, ExternalMemory, LocalMemory, Module
from repro.archsim.packet import Packet
from repro.core.cb_block import CBBlock
from repro.errors import SimulationError
from repro.schedule.kfirst import kfirst_schedule
from repro.schedule.space import BlockCoord, BlockGrid, ComputationSpace
from repro.util import require_positive


@dataclass(slots=True)
class BlockRunStats:
    """Timing of one scheduled block."""

    coord: BlockCoord
    issue_cycle: float
    finish_cycle: float = float("nan")
    a_tiles_streamed: int = 0
    b_tiles_streamed: int = 0

    @property
    def cycles(self) -> float:
        return self.finish_cycle - self.issue_cycle


@dataclass(slots=True)
class SystemReport:
    """Everything one simulated MM produced."""

    c: np.ndarray
    total_cycles: float
    blocks: list[BlockRunStats]
    ext_tiles_out: int
    ext_tiles_in: int
    events: int
    core_multiplies: dict[str, int]

    @property
    def total_multiplies(self) -> int:
        """Tile multiplies retired across the whole grid."""
        return sum(self.core_multiplies.values())

    @property
    def grid_utilisation(self) -> float:
        """Mean core busy fraction: multiplies / (cores * cycles).

        1.0 means every core multiplied on every cycle of the run —
        perfectly compute-bound with no ragged edges.
        """
        cores = len(self.core_multiplies)
        if cores == 0 or self.total_cycles <= 0:
            return 0.0
        return self.total_multiplies / (cores * self.total_cycles)

    @property
    def external_link_utilisation(self) -> float:
        """Fraction of the run the DRAM link spent streaming (given the
        bandwidth recorded at construction via ext_link_busy_cycles)."""
        return self.ext_link_busy_cycles / self.total_cycles

    ext_link_busy_cycles: float = 0.0

    @property
    def steady_block_cycles(self) -> float:
        """Median finish-to-finish spacing between consecutive blocks.

        In a pipelined machine (IO streams ahead of compute) this is the
        steady-state per-block *throughput* — the quantity Section 3's
        ``max(T_compute, T_IO)`` predicts — whereas a block's own
        issue-to-finish latency also contains queueing ahead of it.
        """
        finishes = [b.finish_cycle for b in self.blocks]
        deltas = sorted(
            b - a for a, b in zip(finishes, finishes[1:])
        ) or [finishes[0]]
        return deltas[len(deltas) // 2]


class CakeSystem:
    """A simulated CAKE machine: core grid + local memory + DRAM.

    Parameters
    ----------
    rows, cols:
        Core-grid geometry: ``rows`` is the M extent of a CB block in
        tiles (one A tile per core), ``cols`` its K extent.
    ext_bw_tiles_per_cycle:
        External-memory streaming rate (the ``R * k`` of Section 3.2).
    n_block:
        N extent of a CB block in tiles (``alpha * rows`` in the paper's
        shaping; default ``rows``, i.e. ``alpha = 1``).
    int_bw_tiles_per_cycle:
        Bandwidth of the local memory's port to the cores — every B
        broadcast (charged once per tile, per Eq. 3's counting) and
        every partial-C absorption (charged twice: read + write of the
        running sum) serialises through it. This is the quantity
        Equation 3 bounds (``BW_int >= R*k + 2*p*k``); starving it is
        how the internal-bandwidth ceilings of Figures 10c/11c are
        reproduced in simulation. Default: comfortably above the Eq. 3
        floor (``ext_bw + cols + 2*rows``) so that compute or the
        external link binds instead.
    link_latency:
        Cycles per hop between modules.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        *,
        ext_bw_tiles_per_cycle: float,
        n_block: int | None = None,
        int_bw_tiles_per_cycle: float | None = None,
        link_latency: float = 1.0,
    ) -> None:
        require_positive("rows", rows)
        require_positive("cols", cols)
        require_positive("ext_bw_tiles_per_cycle", ext_bw_tiles_per_cycle)
        self.rows = rows
        self.cols = cols
        self.n_block = rows if n_block is None else n_block
        require_positive("n_block", self.n_block)
        self.int_bw = (
            ext_bw_tiles_per_cycle + cols + 2.0 * rows
            if int_bw_tiles_per_cycle is None
            else int_bw_tiles_per_cycle
        )
        require_positive("int_bw_tiles_per_cycle", self.int_bw)
        self.link_latency = link_latency
        # Single ordered issue stream: every tile (external or resident
        # rebroadcast) departs after its predecessor, so core FIFOs see
        # packets in schedule order regardless of source.
        self._issue_next = 0.0
        # The local-memory port serialiser (Eq. 3's internal bandwidth).
        self._local_next_free = 0.0
        self.local_port_tiles = 0.0

        self.sim = Simulator()
        self.ext_name = "ext"
        self.local_name = "local"
        self.ext = ExternalMemory(self.ext_name, self, ext_bw_tiles_per_cycle)
        self.local = LocalMemory(self.local_name, self)
        self._modules: dict[str, Module] = {
            self.ext_name: self.ext,
            self.local_name: self.local,
        }
        for i in range(rows):
            for j in range(cols):
                name = self.core_name(i, j)
                self._modules[name] = Core(name, self, i, j)

        self._grid: BlockGrid | None = None
        self._block_stats: dict[tuple[int, int, int], BlockRunStats] = {}
        self._block_expected: dict[tuple[int, int, int], int] = {}
        self._block_progress: dict[tuple[int, int, int], int] = {}
        self._run_last_block: dict[tuple[int, int], BlockCoord] = {}

    # -- topology helpers used by modules -----------------------------------

    def core_name(self, row: int, col: int) -> str:
        """Canonical module name of the core at (row, col)."""
        return f"core_{row}_{col}"

    def _extent(self, block: BlockCoord) -> CBBlock:
        if self._grid is None:
            raise SimulationError("no matmul in flight")
        return self._grid.extent(block)

    def _origin(self, block: BlockCoord) -> tuple[int, int, int]:
        if self._grid is None:
            raise SimulationError("no matmul in flight")
        return self._grid.origin(block)

    def active_rows(self, block: BlockCoord) -> int:
        """Rows of the grid participating in ``block`` (ragged edges)."""
        return self._extent(block).m

    def active_cols(self, block: BlockCoord) -> int:
        """Columns of the grid participating in ``block``."""
        return self._extent(block).k

    def run_of(self, block: BlockCoord) -> tuple[int, int]:
        """The reduction run a block belongs to."""
        return (block.mi, block.ni)

    def last_block_of_run(self, run: tuple[int, int]) -> BlockCoord:
        return self._run_last_block[run]

    def global_row(self, block: BlockCoord, row: int) -> int:
        """Grid row -> global M tile index."""
        return self._origin(block)[0] + row

    def global_t(self, block: BlockCoord, t: int) -> int:
        """Block-local N index -> global N tile index."""
        return self._origin(block)[1] + t

    def run_c_tiles(self, run: tuple[int, int]):
        """Global (row, t) coordinates of the run's C tiles."""
        block = self._run_last_block[run]
        ext = self._extent(block)
        m0, n0, _ = self._grid.origin(block)  # type: ignore[union-attr]
        for i in range(ext.m):
            for t in range(ext.n):
                yield (m0 + i, n0 + t)

    # -- packet transport -----------------------------------------------------

    #: Nominal rate for re-injecting already-resident surfaces: high
    #: enough to never pace them (the real pacing happens at the local
    #: memory's port), non-zero to keep the issue stream strictly ordered.
    _REISSUE_RATE = 1e9

    def _issue(self, pkt: Packet, *, external: bool) -> None:
        """Inject one tile through the ordered issue stream.

        External tiles are paced at the DRAM rate and metered as external
        IO; resident rebroadcasts pass through almost instantly (they are
        paced for real at the local-memory port). Departures are strictly
        ordered, so downstream FIFOs preserve the schedule order.
        """
        rate = self.ext.bw if external else self._REISSUE_RATE
        departure = self._issue_next
        self._issue_next = departure + pkt.elements / rate
        if external:
            self.ext.tiles_sent += pkt.elements
        self.send_at(pkt, departure + self.link_latency)

    def local_port_delay(self, tiles: float) -> float:
        """Occupy the local-memory port for ``tiles`` tile-transfers.

        Returns the absolute time at which the transfer departs; the
        port is busy until then plus the service time. All LLC-to-core
        and core-to-LLC traffic funnels through here, so internal
        bandwidth (Eq. 3) becomes a measurable constraint.
        """
        departure = max(self.sim.now, self._local_next_free)
        self._local_next_free = departure + tiles / self.int_bw
        self.local_port_tiles += tiles
        return departure

    def send(self, pkt: Packet, delay: float) -> None:
        """Deliver ``pkt`` to its next hop after ``delay`` cycles."""
        self.send_at(pkt, self.sim.now + delay)

    def send_at(self, pkt: Packet, time: float) -> None:
        target = self._modules.get(pkt.next_hop())
        if target is None:
            raise SimulationError(f"packet routed to unknown module {pkt.next_hop()!r}")
        self.sim.at(time, lambda: target.receive(pkt.advance()))

    # -- progress accounting ---------------------------------------------------

    def note_block_progress(self, block: BlockCoord) -> None:
        """Called by local memory for every absorbed partial tile."""
        key = (block.mi, block.ni, block.ki)
        self._block_progress[key] = self._block_progress.get(key, 0) + 1
        if self._block_progress[key] == self._block_expected[key]:
            self._block_stats[key].finish_cycle = self.sim.now

    # -- execution ----------------------------------------------------------------

    def run_matmul(self, a: np.ndarray, b: np.ndarray) -> SystemReport:
        """Execute ``a @ b`` on the simulated machine and verify coverage.

        Matrix entries are the "tiles" of this granularity; ``a`` is
        ``M x K`` and ``b`` is ``K x N`` with no divisibility demands
        (edge blocks shrink, idling part of the grid).
        """
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError("operands must be 2-D with matching inner dim")
        m, k = a.shape
        _, n = b.shape
        space = ComputationSpace(m, n, k)
        grid = BlockGrid(
            space, CBBlock(min(self.rows, m), min(self.n_block, n), min(self.cols, k))
        )
        self._grid = grid
        order = kfirst_schedule(grid)

        # Arm run/block completion detection.
        run_expected: dict[tuple[int, int], int] = {}
        for coord in order:
            ext = grid.extent(coord)
            key = (coord.mi, coord.ni, coord.ki)
            self._block_expected[key] = ext.m * ext.n
            run = self.run_of(coord)
            run_expected[run] = run_expected.get(run, 0) + ext.m * ext.n
            self._run_last_block[run] = coord
        for run, expected in run_expected.items():
            self.local.expect_run(run[0], run[1], expected)

        # Stream the schedule through the ordered issuer.
        prev: BlockCoord | None = None
        for coord in order:
            ext = grid.extent(coord)
            m0, n0, k0 = grid.origin(coord)
            stats = BlockRunStats(coord=coord, issue_cycle=self._issue_next)
            a_resident = prev is not None and (prev.mi, prev.ki) == (
                coord.mi,
                coord.ki,
            )
            b_resident = prev is not None and (prev.ki, prev.ni) == (
                coord.ki,
                coord.ni,
            )
            if not a_resident:
                for i in range(ext.m):
                    for j in range(ext.k):
                        self._issue(
                            Packet(
                                kind="A",
                                route=(self.local_name,),
                                block=coord,
                                row=i,
                                col=j,
                                value=float(a[m0 + i, k0 + j]),
                            ),
                            external=True,
                        )
                        stats.a_tiles_streamed += 1
            for t in range(ext.n):
                for j in range(ext.k):
                    # A resident B surface is rebroadcast from local
                    # memory — no external IO, faster issue rate.
                    self._issue(
                        Packet(
                            kind="B",
                            route=(self.local_name,),
                            block=coord,
                            col=j,
                            t=t,
                            value=float(b[k0 + j, n0 + t]),
                        ),
                        external=not b_resident,
                    )
                    if not b_resident:
                        stats.b_tiles_streamed += 1
            self._block_stats[(coord.mi, coord.ni, coord.ki)] = stats
            prev = coord

        self.sim.run()

        # Assemble and verify the result surface.
        c = np.zeros((m, n), dtype=np.float64)
        if len(self.ext.results) != m * n:
            raise SimulationError(
                f"simulation produced {len(self.ext.results)} of {m * n} C tiles"
            )
        for (row, t), value in self.ext.results.items():
            c[row, t] = value

        blocks = [
            self._block_stats[(o.mi, o.ni, o.ki)] for o in order
        ]
        core_multiplies = {
            name: mod.multiplies
            for name, mod in self._modules.items()
            if isinstance(mod, Core)
        }
        return SystemReport(
            c=c,
            total_cycles=self.sim.now,
            blocks=blocks,
            ext_tiles_out=self.ext.tiles_sent,
            ext_tiles_in=self.ext.tiles_received,
            events=self.sim.events_processed,
            core_multiplies=core_multiplies,
            ext_link_busy_cycles=self.ext.tiles_sent / self.ext.bw,
        )
