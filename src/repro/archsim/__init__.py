"""Packet-based discrete-event architecture simulator (Section 6.2).

The paper's authors built a SystemC/MatchLib simulator to validate the CB
block design and execution schedule before writing the CPU library; this
package plays the same role. It models the Section 3 abstract machine —
external memory, a local memory, and a grid of cores (Figure 3b) — at tile
granularity with event-driven timing:

* all communication uses standardised :class:`~repro.archsim.packet.Packet`
  objects with source-routing headers and tile/block indices, exactly as
  Section 6.2 describes;
* external memory streams A and B tile packets at a configurable external
  bandwidth (tiles/cycle);
* the local memory forwards A tiles to their cores, broadcasts each B tile
  to a whole column of cores, buffers partial-result surfaces between
  blocks of a reduction run, and writes completed C tiles back;
* each core holds one stationary A tile, multiplies one streamed B tile
  per cycle, and passes partial results down an accumulation chain toward
  the back of the computation space.

Because packets carry real values, a simulation yields the actual product
— numerical correctness of the schedule is *checked*, not assumed — while
the event clock yields block execution times that tests compare against
the closed-form Section 3 predictions (compute time ``n`` cycles vs IO
time ``(IO_A + IO_B) / BW_ext``).

Changing the core-grid size is a constructor argument, reflecting the
paper's point that packet scheduling makes the architecture easy to
reconfigure.
"""

from repro.archsim.event_queue import Simulator
from repro.archsim.packet import Packet
from repro.archsim.system import BlockRunStats, CakeSystem, SystemReport

__all__ = [
    "Simulator",
    "Packet",
    "BlockRunStats",
    "CakeSystem",
    "SystemReport",
]
