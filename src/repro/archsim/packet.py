"""Standardised packets (Section 6.2).

"To reduce module complexity and simplify programming, standardized
packets are used for all communication between simulated hardware
modules. Packets originate from external memory and contain headers to
control routing (i.e., source routing) as well as fields containing the
packet's tile index into the computation space and CB block."

A packet's ``route`` is the remaining list of module names it must visit;
each hop pops the head. ``block`` plus ``(row, col, t)`` locate the tile:
``row``/``col`` index the core grid (M and K positions inside the block),
``t`` indexes the block's N dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

from repro.errors import SimulationError
from repro.schedule.space import BlockCoord

Kind = Literal["A", "B", "PARTIAL", "C"]


@dataclass(frozen=True, slots=True)
class Packet:
    """One tile in flight.

    Attributes
    ----------
    kind:
        ``"A"``/``"B"`` input tiles, ``"PARTIAL"`` accumulation traffic
        between cores, ``"C"`` completed results headed back out.
    route:
        Remaining source route (module names, first is the next hop).
    block:
        Which CB block of the schedule this tile belongs to.
    row, col:
        Tile coordinates inside the block's A surface / core grid
        (row = M position, col = K position). ``-1`` when not applicable.
    t:
        Index along the block's N dimension. ``-1`` when not applicable.
    value:
        The tile's numerical payload (scalar tiles at this granularity).
    elements:
        Tile size in elements, for bandwidth accounting.
    """

    kind: Kind
    route: tuple[str, ...]
    block: BlockCoord
    row: int = -1
    col: int = -1
    t: int = -1
    value: float = 0.0
    elements: int = 1

    def next_hop(self) -> str:
        """The module this packet should be delivered to next."""
        if not self.route:
            raise SimulationError(f"packet {self} has an exhausted route")
        return self.route[0]

    def advance(self) -> "Packet":
        """The packet as seen after the current hop consumes the head."""
        return replace(self, route=self.route[1:])

    def redirect(self, *route: str) -> "Packet":
        """A copy with a brand-new source route (used by broadcast fan-out)."""
        return replace(self, route=route)
