"""Provisioning: from a performance target to a memory-system budget.

Section 1: "Under the CB framework, we can precisely characterize the
required size and bandwidth of local memory for achieving a target
computation throughput with a given external memory bandwidth." This
module is that characterisation, run forward as a design tool:

given a target computation throughput (cores to keep busy) and the
external bandwidth the platform offers, it returns the CB operating point
— ``alpha`` from Section 3.2 — and the local-memory size (Eq. 1) and
internal bandwidth (Eq. 3) the platform must provide. This is the
workflow an accelerator architect would use (Section 6.1's "beyond
CPUs"), and the ``custom_machine`` example drives it end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.requirements import (
    internal_bandwidth_required,
    internal_memory_required,
)
from repro.core.shaping import alpha_from_bandwidth_ratio, cb_block_shape
from repro.errors import ConfigurationError
from repro.util import require_positive


@dataclass(frozen=True, slots=True)
class ProvisioningResult:
    """The memory system a CB design point requires.

    All quantities in the Section 3 model units: memory in tiles,
    bandwidth in tiles/cycle (multiply by tile size and clock for bytes
    and bytes/s on a concrete machine).
    """

    p: int
    k: int
    alpha: float
    bandwidth_ratio: float
    local_memory_tiles: float
    internal_bw_tiles_per_cycle: float
    external_bw_tiles_per_cycle: float

    @property
    def block(self):
        """The CB block realising this operating point."""
        return cb_block_shape(self.p, self.k, self.alpha)


def provision(
    *,
    p: int,
    k: int,
    external_bw_tiles_per_cycle: float,
) -> ProvisioningResult:
    """Size the local memory for ``p * k`` cores under a bandwidth cap.

    Parameters
    ----------
    p, k:
        Target processing power: a grid of ``p * k`` cores, each
        retiring one tile multiply per cycle.
    external_bw_tiles_per_cycle:
        What the external memory can stream. Written as ``R * k`` in
        Section 3.2; must exceed ``k`` (R > 1) or no block shape can
        balance IO with compute.

    Returns
    -------
    ProvisioningResult
        The minimal ``alpha`` (hence minimal local memory, since Eq. 1
        grows with alpha) meeting the bandwidth floor, with the Eq. 1
        memory size and Eq. 3 internal bandwidth the platform must then
        provide.

    Raises
    ------
    ConfigurationError
        If the external bandwidth is at or below the ``R = 1`` floor.
    """
    require_positive("p", p)
    require_positive("k", k)
    require_positive(
        "external_bw_tiles_per_cycle", external_bw_tiles_per_cycle
    )
    r = external_bw_tiles_per_cycle / k
    if r <= 1.0:
        raise ConfigurationError(
            f"external bandwidth {external_bw_tiles_per_cycle} tiles/cycle is "
            f"at or below the floor of k = {k}; no CB block can balance it"
        )
    alpha = alpha_from_bandwidth_ratio(r)
    return ProvisioningResult(
        p=p,
        k=k,
        alpha=alpha,
        bandwidth_ratio=r,
        local_memory_tiles=internal_memory_required(p, k, alpha),
        internal_bw_tiles_per_cycle=internal_bandwidth_required(p, k, r),
        external_bw_tiles_per_cycle=external_bw_tiles_per_cycle,
    )


def scaling_table(
    *, k: int, external_bw_tiles_per_cycle: float, p_values: tuple[int, ...]
) -> list[ProvisioningResult]:
    """Provision a family of designs at growing processing power.

    The constant-bandwidth story in design-tool form: every row shares
    the same external bandwidth while compute grows with ``p`` — local
    memory must grow ~quadratically (Eq. 1) and internal bandwidth
    ~linearly (Eq. 3) to pay for it.
    """
    return [
        provision(p=p, k=k, external_bw_tiles_per_cycle=external_bw_tiles_per_cycle)
        for p in p_values
    ]
