"""Constant-bandwidth (CB) block theory — Sections 2-4 of the paper.

This package is the analytical heart of CAKE. It contains no simulation:
only the closed-form shaping/sizing algebra that the paper derives, which the
executors (:mod:`repro.gemm`), the performance model (:mod:`repro.perfmodel`)
and the architecture simulator (:mod:`repro.archsim`) all consume.

Contents
--------
:mod:`repro.core.cb_block`
    The :class:`~repro.core.cb_block.CBBlock` value type: a block of the
    computation space with its three IO surfaces.
:mod:`repro.core.shaping`
    Section 3 shaping: ``m = p*k``, ``n = alpha*p*k``; choosing ``alpha``
    from the bandwidth ratio ``R``.
:mod:`repro.core.requirements`
    Equations 1-3: internal memory size, minimum external bandwidth, and
    internal bandwidth of a CB block.
:mod:`repro.core.cpu_model`
    Section 4: the CPU adaptation (``k = 1``, tiles of ``mr x nr``) for both
    CAKE (Eqs. 4-6) and GOTO (Section 4.1).
:mod:`repro.core.lru_sizing`
    Section 4.3: sizing CB blocks under LRU caches (``C + 2(A+B) <= S``).
:mod:`repro.core.intensity`
    Arithmetic-intensity algebra behind Figure 4.
"""

from repro.core.cb_block import CBBlock
from repro.core.shaping import (
    alpha_from_bandwidth_ratio,
    cb_block_shape,
    min_bandwidth_ratio,
)
from repro.core.requirements import (
    external_bandwidth_min,
    internal_bandwidth_required,
    internal_memory_required,
)
from repro.core.cpu_model import (
    CakeCpuParams,
    GotoCpuParams,
    cake_block_compute_cycles,
    cake_external_bw,
    cake_internal_bw,
    cake_local_memory,
    goto_external_bw,
    goto_panel_compute_cycles,
)
from repro.core.lru_sizing import (
    cake_block_fits,
    solve_cake_mc,
    solve_goto_tiles,
)
from repro.core.intensity import (
    arithmetic_intensity,
    block_arithmetic_intensity,
    square_mm_intensity,
)
from repro.core.directions import (
    DIRECTIONS,
    DirectionAnalysis,
    analyze_direction,
    best_direction,
    block_compute_cycles,
)
from repro.core.provisioning import (
    ProvisioningResult,
    provision,
    scaling_table,
)

__all__ = [
    "CBBlock",
    "alpha_from_bandwidth_ratio",
    "cb_block_shape",
    "min_bandwidth_ratio",
    "external_bandwidth_min",
    "internal_bandwidth_required",
    "internal_memory_required",
    "CakeCpuParams",
    "GotoCpuParams",
    "cake_block_compute_cycles",
    "cake_external_bw",
    "cake_internal_bw",
    "cake_local_memory",
    "goto_external_bw",
    "goto_panel_compute_cycles",
    "cake_block_fits",
    "solve_cake_mc",
    "solve_goto_tiles",
    "arithmetic_intensity",
    "block_arithmetic_intensity",
    "square_mm_intensity",
    "DIRECTIONS",
    "DirectionAnalysis",
    "analyze_direction",
    "best_direction",
    "block_compute_cycles",
    "ProvisioningResult",
    "provision",
    "scaling_table",
]
