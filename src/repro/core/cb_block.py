"""The CB block value type (Section 2.1).

A block of the ``M x N x K`` computation space is a 3-D sub-volume of
multiply-accumulate operations defined by three IO surfaces:

* input surface ``A`` of size ``m x k`` (the "left" wall),
* input surface ``B`` of size ``k x n`` (the "top"),
* result surface ``C`` of size ``m x n`` (the "back" wall),

where lower-case ``m, n, k`` are the block's extents. The block's *volume*
is ``m * n * k`` MACs. Everything the paper derives about a block —
IO totals, memory footprint, arithmetic intensity, computation time — is a
pure function of ``(m, n, k)``, which is why this is a frozen dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import require_positive


@dataclass(frozen=True, slots=True)
class CBBlock:
    """Extents of one block of the MM computation space, in elements.

    Attributes
    ----------
    m, n, k:
        Block extents along the M (rows of A/C), N (columns of B/C) and
        K (reduction) dimensions.
    """

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        require_positive("m", self.m)
        require_positive("n", self.n)
        require_positive("k", self.k)

    @property
    def volume(self) -> int:
        """Number of MAC operations in the block (``m * n * k``)."""
        return self.m * self.n * self.k

    @property
    def surface_a(self) -> int:
        """Elements in the A input surface (``m x k``)."""
        return self.m * self.k

    @property
    def surface_b(self) -> int:
        """Elements in the B input surface (``k x n``)."""
        return self.k * self.n

    @property
    def surface_c(self) -> int:
        """Elements in the C result surface (``m x n``)."""
        return self.m * self.n

    @property
    def io_total(self) -> int:
        """Sum of the three IO surfaces.

        Per Section 2.1 this equals both the external IO of an isolated
        block and the local-memory footprint needed to hold it.
        """
        return self.surface_a + self.surface_b + self.surface_c

    @property
    def input_io(self) -> int:
        """IO of the two input surfaces only (A and B).

        This is the recurring external traffic of a block whose partial
        results stay resident in local memory (Section 3.2).
        """
        return self.surface_a + self.surface_b

    def flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.volume

    def scaled(self, *, m: int = 1, n: int = 1, k: int = 1) -> "CBBlock":
        """Return a copy with each extent multiplied by the given factor.

        Used to express Figure 4's "grow the block taller and wider as
        cores are added" transformation.
        """
        return CBBlock(self.m * m, self.n * n, self.k * k)
