"""Sizing CB blocks to survive LRU eviction (Section 4.3).

A CPU cache with LRU replacement cannot be filled to the brim with matrix
operands: when the next block's A and B surfaces start streaming in, they
must evict the *previous* block's A/B entries — not the partial-C surface
that is still being accumulated. The paper's rule for a cache of size ``S``
(elements) is::

    C + 2*(A + B) <= S

The factor of 2 reserves room for ``A[i+1]``/``B[i+1]`` to coexist with
``A[i]``/``B[i]`` and ``C[i]``, guaranteeing that by the time block ``i+2``
streams in, block ``i``'s input entries are LRU and get evicted first.

For CAKE's CPU shaping (``mc = kc``, block ``p*mc x kc x alpha*p*mc``):

* ``A = p * mc^2``
* ``B = alpha * p * mc^2``
* ``C = alpha * p^2 * mc^2``

so the rule becomes ``mc^2 * (alpha*p^2 + 2*(1+alpha)*p) <= S_llc``, from
which :func:`solve_cake_mc` extracts the largest feasible ``mc``. The
per-core constraint ``mc*kc <= S_l2`` (with its own doubling factor for the
incoming next A sub-block) caps ``mc`` from the L2 side.

Worked example (tested): Intel i9-10900K, ``p = 10``, ``alpha = 1``,
20 MiB LLC of float32 => ``mc = 192``, exactly the value quoted in
Section 4.4 of the paper.
"""

from __future__ import annotations

import math

from repro.core.cpu_model import CakeCpuParams, GotoCpuParams
from repro.errors import ConfigurationError
from repro.util import floor_to_multiple, require_at_least, require_positive


def cake_block_fits(
    params: CakeCpuParams, llc_elements: int, *, slack: float = 1.0
) -> bool:
    """Check the Section 4.3 rule ``C + 2*(A + B) <= S`` for a CAKE block.

    ``slack`` scales the usable cache size (e.g. 0.9 to model the share
    lost to non-operand lines); the default uses the whole cache as the
    paper does.
    """
    require_positive("llc_elements", llc_elements)
    require_positive("slack", slack)
    a = params.p * params.mc * params.kc
    b = params.alpha * params.p * params.mc * params.kc
    c = params.alpha * params.p**2 * params.mc * params.kc
    return c + 2 * (a + b) <= llc_elements * slack


def solve_cake_mc(
    *,
    p: int,
    alpha: float,
    llc_elements: int,
    l2_elements: int,
    mr: int,
    nr: int,
) -> int:
    """Largest square ``mc = kc`` satisfying both cache constraints.

    LLC constraint (Section 4.3):
        ``mc^2 * (alpha*p^2 + 2*(1 + alpha)*p) <= llc_elements``
    L2 constraint (the per-core square A sub-block must fit its cache,
    Section 4.4):
        ``mc^2 <= l2_elements``

    The Section 4.3 doubling rule applies to the *shared* cache, where
    the next block's surfaces stream in while the partial-C surface must
    survive; the per-core A block is simply loaded and used, so it only
    has to fit. (This reproduces the paper's worked example: Intel
    i9-10900K, ``p=10``, ``alpha=1`` gives ``mc = 192`` exactly.)

    The result is floored to a multiple of ``mr`` so that per-core strips
    tile cleanly into register tiles (and clamped at ``mr`` from below).

    Raises
    ------
    ConfigurationError
        If even ``mc = mr`` violates the LLC rule — the machine's cache is
        too small for this ``(p, alpha)`` operating point.
    """
    require_positive("p", p)
    require_at_least("alpha", alpha, 1.0)
    require_positive("llc_elements", llc_elements)
    require_positive("l2_elements", l2_elements)
    require_positive("mr", mr)
    require_positive("nr", nr)

    llc_coeff = alpha * p * p + 2.0 * (1.0 + alpha) * p
    mc_llc = math.isqrt(int(llc_elements / llc_coeff))
    mc_l2 = math.isqrt(l2_elements)
    mc = min(mc_llc, mc_l2)
    if mc < mr:
        raise ConfigurationError(
            f"no feasible mc: caches admit mc={mc} but the micro-kernel needs "
            f"mc >= mr={mr} (p={p}, alpha={alpha}, llc={llc_elements} elements)"
        )
    return floor_to_multiple(mc, mr)


def solve_goto_tiles(
    *,
    p: int,
    llc_elements: int,
    l2_elements: int,
    mr: int,
    nr: int,
) -> GotoCpuParams:
    """Choose GOTO's ``(mc, kc, nc)`` from cache sizes (Section 4.1).

    * ``mc = kc`` square, sized so the A sub-block fits the L2
      (``mc * kc <= Size_L2``, Section 4.1).
    * ``nc`` sized so the ``kc x nc`` B panel fills the LLC, floored to a
      multiple of ``nr``.
    """
    require_positive("p", p)
    require_positive("llc_elements", llc_elements)
    require_positive("l2_elements", l2_elements)

    mc_raw = math.isqrt(l2_elements)
    if mc_raw < mr:
        raise ConfigurationError(
            f"L2 of {l2_elements} elements cannot hold an {mr}x{mr} A sub-block"
        )
    mc = floor_to_multiple(mc_raw, mr)
    if llc_elements // mc < nr:
        raise ConfigurationError(
            f"LLC of {llc_elements} elements cannot hold a {mc}x{nr} B panel"
        )
    nc = floor_to_multiple(llc_elements // mc, nr)
    return GotoCpuParams(p=p, mc=mc, kc=mc, nc=nc, mr=mr, nr=nr)
