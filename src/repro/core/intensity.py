"""Arithmetic-intensity algebra (Figure 4 and Section 5.2.3).

Arithmetic intensity (AI) is the ratio of computation volume to data
transferred, ``AI = V / IO``, which equals the ratio of computation
throughput to bandwidth: ``AI = CT / BW``. CB blocks exploit this identity:
growing a block's volume while holding its external IO rate constant raises
AI and therefore raises the throughput achievable under a fixed external
bandwidth.
"""

from __future__ import annotations

from repro.core.cb_block import CBBlock
from repro.util import require_positive


def arithmetic_intensity(volume: float, io: float) -> float:
    """``AI = V / IO`` — MACs per element transferred."""
    require_positive("volume", volume)
    require_positive("io", io)
    return volume / io


def block_arithmetic_intensity(block: CBBlock, *, resident_c: bool = True) -> float:
    """AI of a single CB block.

    With ``resident_c=True`` (the CAKE discipline) partial results never
    cross the external boundary, so IO is only the A and B surfaces; with
    ``resident_c=False`` (an isolated block, or GOTO-style streaming) the C
    surface counts too.
    """
    io = block.input_io if resident_c else block.io_total
    return arithmetic_intensity(block.volume, io)


def square_mm_intensity(n: int) -> float:
    """AI of a full square ``n x n`` MM with perfect reuse: ``O(n)``.

    ``V = n^3`` MACs against ``IO = 3 n^2`` elements (read A, read B,
    write C once) gives ``AI = n / 3``. Section 5.2.3 uses this to explain
    why small problems are memory-bound: AI shrinks linearly with ``n``.
    """
    require_positive("n", n)
    return n**3 / (3.0 * n**2)
