"""CPU adaptation of the CB analysis — Section 4 of the paper.

On a CPU the model specialises as follows (Section 4 intro):

* ``k = 1`` so any core count ``1..p`` is usable; ``p`` *is* the core count.
* The unit of work is an ``mr x kc`` by ``kc x nr`` register-tile multiply
  (Figure 5e / 6e); one core retires one such tile multiply per cycle, i.e.
  ``mr * kc * nr`` MACs per cycle.
* CAKE's CB block on the CPU is ``p*mc  x  kc  x  alpha*p*mc`` with square
  per-core A sub-blocks (``mc = kc``) resident in each L2, the B panel and
  the partial-C surface resident in the shared last-level cache.
* GOTO's unit of work is ``p`` result panels of ``mc x nc`` for one
  ``kc``-deep slice, with the B panel (``kc x nc``) resident in the LLC and
  partial C streamed to/from DRAM.

Bandwidths below are in **elements per cycle**; multiply by clock and
element width (:mod:`repro.util.units`) for GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import require_at_least, require_positive


@dataclass(frozen=True, slots=True)
class CakeCpuParams:
    """Tiling parameters of the CAKE executor on a CPU.

    Attributes
    ----------
    p:
        Number of cores in use.
    mc, kc:
        Per-core A sub-block extents; the paper sets ``mc = kc`` (square)
        but the dataclass keeps both for ragged-edge handling.
    alpha:
        CB aspect factor (``n_block = alpha * p * mc``), >= 1.
    mr, nr:
        Register-tile extents of the micro-kernel.
    """

    p: int
    mc: int
    kc: int
    alpha: float
    mr: int
    nr: int

    def __post_init__(self) -> None:
        require_positive("p", self.p)
        require_positive("mc", self.mc)
        require_positive("kc", self.kc)
        require_at_least("alpha", self.alpha, 1.0)
        require_positive("mr", self.mr)
        require_positive("nr", self.nr)

    @property
    def m_block(self) -> int:
        """CB block extent along M: ``p * mc``."""
        return self.p * self.mc

    @property
    def k_block(self) -> int:
        """CB block extent along K: ``kc``."""
        return self.kc

    @property
    def n_block(self) -> int:
        """CB block extent along N: ``alpha * p * mc`` (rounded down).

        Rounded *down* so the partial-C surface never exceeds what the
        LRU sizing rule (Section 4.3) budgeted for it, then clamped up to
        ``nr`` so the block always holds at least one register tile.
        """
        return max(int(self.alpha * self.p * self.mc), self.nr)


@dataclass(frozen=True, slots=True)
class GotoCpuParams:
    """Tiling parameters of the GOTO executor on a CPU (Section 4.1).

    ``mc x kc`` A sub-blocks live in each core's L2; a ``kc x nc`` B panel
    lives in the LLC; ``mr x nr`` C tiles stream to/from DRAM.
    """

    p: int
    mc: int
    kc: int
    nc: int
    mr: int
    nr: int

    def __post_init__(self) -> None:
        require_positive("p", self.p)
        require_positive("mc", self.mc)
        require_positive("kc", self.kc)
        require_positive("nc", self.nc)
        require_positive("mr", self.mr)
        require_positive("nr", self.nr)


# ---------------------------------------------------------------------------
# CAKE on CPU (Section 4.2)
# ---------------------------------------------------------------------------

def cake_block_compute_cycles(params: CakeCpuParams) -> float:
    """Compute time of one CB block, in model cycles.

    ``T = (mc * kc * alpha*p*mc) / (mr * kc * nr) = alpha * p * mc^2 / (mr*nr)``

    Each of the ``p`` cores computes its own ``mc x (alpha*p*mc)`` strip of
    the block's C surface, retiring one ``mr x kc x nr`` tile per cycle.
    """
    return params.alpha * params.p * params.mc * params.mc / (params.mr * params.nr)


def cake_external_bw(params: CakeCpuParams) -> float:
    """Equation 4: CAKE's required external bandwidth, elements/cycle.

    ``BW_ext = IO / T = ((alpha + 1) / alpha) * mr * nr``

    Independent of ``p`` — the constant-bandwidth property. Only the A and
    B surfaces cross the DRAM boundary per block; partial C stays in the
    LLC until its reduction completes.
    """
    return (params.alpha + 1.0) / params.alpha * params.mr * params.nr


def cake_local_memory(params: CakeCpuParams) -> float:
    """Equation 5: CAKE's local-memory footprint, elements.

    ``MEM_local = p*mc*kc*(alpha + 1) + alpha * p^2 * mc^2``

    Quadratic in ``p`` through the partial-C term.
    """
    p, mc, kc, a = params.p, params.mc, params.kc, params.alpha
    return p * mc * kc * (a + 1.0) + a * p * p * mc * mc


def cake_internal_bw(params: CakeCpuParams) -> float:
    """Equation 6: CAKE's required internal bandwidth, elements/cycle.

    ``BW_int = (IO_A + IO_B + 2*IO_C) / T = (2*p + 1/alpha + 1) * mr * nr``

    Grows linearly with the core count via the ``2p`` partial-result term.
    """
    return (2.0 * params.p + 1.0 / params.alpha + 1.0) * params.mr * params.nr


# ---------------------------------------------------------------------------
# GOTO on CPU (Section 4.1)
# ---------------------------------------------------------------------------

def goto_panel_compute_cycles(params: GotoCpuParams) -> float:
    """Compute time of one GOTO super-step, in model cycles.

    One super-step computes ``p`` result sub-matrices of ``mc x nc`` (one
    per core) for a single ``kc`` slice:

    ``T = (mc * kc * nc) / (mr * kc * nr) = mc * nc / (mr * nr)``
    """
    return params.mc * params.nc / (params.mr * params.nr)


def goto_external_bw(params: GotoCpuParams) -> float:
    """GOTO's required external bandwidth, elements/cycle (Section 4.1).

    ``BW_ext = (p*mc*kc + kc*nc + p*mc*nc) / T
             = (1 + p + (kc/nc)*p) * mr * nr``   (using ``mc = kc``)

    Grows at least linearly in ``p``: each added core adds both an A
    sub-block and an ``mc x nc`` streamed partial-C panel per super-step.
    """
    p, mc, kc, nc = params.p, params.mc, params.kc, params.nc
    io = p * mc * kc + kc * nc + p * mc * nc
    t = goto_panel_compute_cycles(params)
    return io / t
