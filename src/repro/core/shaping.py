"""CB block shaping (Section 3).

The paper's shaping rule: on an abstract machine with ``p * k`` cores laid
out as a grid (Figure 3b), the block's A surface holds exactly one tile per
core, so

* ``m = p * k``   (rows of the A surface = one tile per core),
* ``n = alpha * p * k``  with ``alpha >= 1``,
* depth ``k`` fixed by available external bandwidth.

``alpha`` compensates for low external bandwidth: the block computes for
``n = alpha * p * k`` unit times while needing only its A and B surfaces
from outside, so raising ``alpha`` lowers required external bandwidth
(Eq. 2) at the cost of more local memory (Eq. 1).

External bandwidth is written ``BW_ext = R * k`` tiles/cycle where ``R > 1``
captures how much real bandwidth exceeds the floor. The minimum-bandwidth
condition ``BW_ext >= BW_min`` is equivalent to ``alpha >= 1 / (R - 1)``
(Section 3.2).
"""

from __future__ import annotations

import math

from repro.core.cb_block import CBBlock
from repro.errors import ConfigurationError
from repro.util import require_at_least, require_positive


def cb_block_shape(p: int, k: int, alpha: float) -> CBBlock:
    """Shape a CB block for ``p * k`` cores with aspect factor ``alpha``.

    Parameters
    ----------
    p:
        Processing-power scale factor; the grid has ``p * k`` cores and the
        block is ``m = p * k`` rows tall.
    k:
        Reduction depth of the block (also the width of the core grid).
    alpha:
        Aspect factor ``>= 1`` widening the block along N. Fractional
        values are permitted by the algebra; the returned block rounds
        ``n`` up to the next integer so that the block never undershoots
        the bandwidth target.

    Returns
    -------
    CBBlock
        A block of shape ``(m, n, k) = (p*k, ceil(alpha*p*k), k)``.
    """
    require_positive("p", p)
    require_positive("k", k)
    require_at_least("alpha", alpha, 1.0)
    m = p * k
    n = math.ceil(alpha * p * k)
    return CBBlock(m=m, n=n, k=k)


def alpha_from_bandwidth_ratio(r: float) -> float:
    """Smallest ``alpha`` satisfying the bandwidth floor, ``1 / (R - 1)``.

    Section 3.2: external bandwidth ``BW_ext = R * k`` meets the block's
    minimum requirement iff ``alpha >= 1 / (R - 1)``. Since the paper also
    requires ``alpha >= 1`` (a block at least as wide as it is tall), the
    returned value is clamped from below at 1.

    Raises
    ------
    ConfigurationError
        If ``r <= 1``: with no headroom over the floor (``R <= 1``) no
        finite ``alpha`` can balance IO with computation.
    """
    if r <= 1.0:
        raise ConfigurationError(
            f"bandwidth ratio R must exceed 1 for a feasible CB block, got {r!r}"
        )
    return max(1.0, 1.0 / (r - 1.0))


def min_bandwidth_ratio(alpha: float) -> float:
    """Inverse of :func:`alpha_from_bandwidth_ratio`.

    Returns the smallest ``R`` for which a block with this ``alpha`` meets
    its external-bandwidth floor: ``R = 1 + 1/alpha``.
    """
    require_at_least("alpha", alpha, 1.0)
    return 1.0 + 1.0 / alpha
