"""CB blocks computed in the N, M or K dimension (Section 3).

The paper's main analysis streams blocks along **N** (each core keeps one
A tile and sweeps the block's N extent), but notes: "Alternatively, we can
compute a CB block in the M or K-dimension, resulting in a CB block
computation time of k or m unit times, respectively. Computing CB blocks
in alternative directions may be advantageous on certain architectures.
For example, computing CB blocks in the K-dimension is preferable when
doing in-place accumulation."

This module works out that sketched extension. For a block shaped
``m = p*k``, ``n = alpha*p*k`` (Section 3 shaping):

* **N-direction** (the paper's): A tiles stationary, B streams;
  ``T = n = alpha*p*k`` cycles. External per-block traffic is A + B.
* **M-direction**: B tiles stationary (one per core requires the grid to
  be re-dealt along B's ``k x n`` surface), A streams; ``T = k``.
* **K-direction**: C tiles stationary in the cores (in-place
  accumulation in registers/L2 — no partial traffic even to the LLC),
  A and B both stream; ``T = m = p*k``.

Each direction's minimum external bandwidth is its streamed-surface IO
over its compute time; the stationary surface loads once and, as in
Section 3.2, the resident partial/output surface does not cross the
external boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.core.cb_block import CBBlock
from repro.core.shaping import cb_block_shape
from repro.util import require_at_least, require_positive

Direction = Literal["n", "m", "k"]

DIRECTIONS: tuple[Direction, ...] = ("n", "m", "k")


@dataclass(frozen=True, slots=True)
class DirectionAnalysis:
    """Resource profile of one streaming direction for one CB block."""

    direction: Direction
    block: CBBlock
    compute_cycles: float
    streamed_io: float
    stationary_io: float
    external_bw_min: float

    @property
    def resident_surface(self) -> str:
        """Which surface stays put while the block computes."""
        return {"n": "A", "m": "B", "k": "C"}[self.direction]


def block_compute_cycles(p: int, k: int, alpha: float, direction: Direction) -> float:
    """Compute time of a CB block streamed along ``direction``.

    N-direction: ``n = alpha*p*k`` cycles; M-direction: ``k`` cycles;
    K-direction: ``m = p*k`` cycles (each core retires one tile per
    cycle along the streamed dimension).
    """
    require_positive("p", p)
    require_positive("k", k)
    require_at_least("alpha", alpha, 1.0)
    if direction == "n":
        return alpha * p * k
    if direction == "m":
        return float(k)
    if direction == "k":
        return float(p * k)
    raise ValueError(f"direction must be one of {DIRECTIONS}, got {direction!r}")


def analyze_direction(
    p: int, k: int, alpha: float, direction: Direction
) -> DirectionAnalysis:
    """Full Section 3-style resource profile for one direction.

    The streamed traffic is everything except the stationary surface
    (inputs) and the locally-accumulated result:

    * ``n``: streams B (``k * n``); A stationary; partial C in local
      memory — external per-block input IO is ``A + B`` as in Eq. 2, but
      only B is *rate-critical* during compute (A loads once up front,
      amortised over the ``alpha`` factor). We follow Eq. 2 and keep
      both input surfaces in the bandwidth term.
    * ``m``: streams A (``m * k``); B stationary; C accumulates locally.
    * ``k``: streams A and B; C stationary in the cores (the in-place
      accumulation case) — nothing flows back out until complete.
    """
    block = cb_block_shape(p, k, alpha)
    cycles = block_compute_cycles(p, k, alpha, direction)
    # Analytic (unrounded) surfaces, so the N-direction reproduces Eq. 2
    # exactly for fractional alpha: A = p*k^2, B = alpha*p*k^2.
    surface_a = float(p * k * k)
    surface_b = alpha * p * k * k
    surface_c = alpha * p * p * k * k
    streamed = surface_a + surface_b
    stationary = surface_c if direction == "k" else 0.0
    return DirectionAnalysis(
        direction=direction,
        block=block,
        compute_cycles=cycles,
        streamed_io=streamed,
        stationary_io=stationary,
        external_bw_min=streamed / cycles,
    )


def best_direction(p: int, k: int, alpha: float) -> DirectionAnalysis:
    """The direction with the lowest external-bandwidth floor.

    For the paper's shaping (``n >= m >= k``), streaming along the
    longest dimension wins: the block computes longest per unit of input
    IO. With ``alpha >= 1`` that is always the N-direction — which is
    why the paper presents it — with K tying when ``alpha == 1`` and the
    M-direction always worst.
    """
    analyses = [analyze_direction(p, k, alpha, d) for d in DIRECTIONS]
    return min(analyses, key=lambda a: a.external_bw_min)
