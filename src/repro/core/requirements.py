"""Resource-requirement equations of a CB block (Sections 3.1-3.3).

All three functions take the shaping parameters ``(p, k, alpha)`` directly
(rather than a :class:`~repro.core.cb_block.CBBlock`) because the equations
are stated in those terms in the paper and because they remain meaningful
for fractional ``alpha``.

Units: memory in *tiles* (one tile is the unit a core consumes per cycle)
and bandwidth in *tiles per cycle*. The CPU adaptation with concrete element
counts lives in :mod:`repro.core.cpu_model`.
"""

from __future__ import annotations

from repro.util import require_at_least, require_positive


def internal_memory_required(p: int, k: int, alpha: float) -> float:
    """Equation 1: local-memory footprint of a CB block.

    ``MEM_internal = IO_A + IO_B + IO_C_partial
                   = p*k^2 + alpha*p*k^2 + alpha*p^2*k^2``

    The quadratic third term is the partial-result surface: doubling the
    processing power (``p``) quadruples the partial-result footprint, which
    is the price CAKE pays for holding external bandwidth constant.
    """
    require_positive("p", p)
    require_positive("k", k)
    require_at_least("alpha", alpha, 1.0)
    io_a = p * k * k
    io_b = alpha * p * k * k
    io_c = alpha * p * p * k * k
    return io_a + io_b + io_c


def external_bandwidth_min(k: int, alpha: float) -> float:
    """Equation 2: minimum external bandwidth of a CB block, tiles/cycle.

    ``BW_min = (IO_A + IO_B) / T = ((alpha + 1) / alpha) * k``

    Independent of ``p``: growing the core count grows the block's IO and
    its computation time by the same factor, which is the constant-bandwidth
    property illustrated in Figure 4.
    """
    require_positive("k", k)
    require_at_least("alpha", alpha, 1.0)
    return (alpha + 1.0) / alpha * k


def internal_bandwidth_required(p: int, k: int, r: float) -> float:
    """Equation 3: internal (local-memory) bandwidth floor, tiles/cycle.

    ``BW_int = (IO_A + IO_B + 2*IO_C_partial) / T = R*k + 2*p*k``

    The partial surface is touched twice per block (read + write back of
    the running accumulation), hence the ``2*p*k`` term that grows linearly
    with processing power: CAKE trades external for internal bandwidth.
    """
    require_positive("p", p)
    require_positive("k", k)
    require_at_least("r", r, 1.0)
    return r * k + 2.0 * p * k
