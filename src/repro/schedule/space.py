"""The MM computation space and its partition into a block grid.

Section 2 represents ``C = A x B`` as an ``M x N x K`` volume of MAC
operations bounded by three IO surfaces (A on the left, B on top, C at the
back). :class:`BlockGrid` cuts that volume into a grid of nominally uniform
blocks; blocks on the high edge of each dimension carry the remainder, so
the grid tiles the space exactly once — a property the test suite checks by
construction and by hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.cb_block import CBBlock
from repro.util import require_nonnegative, require_positive, split_length


@dataclass(frozen=True, slots=True)
class ComputationSpace:
    """The full ``M x N x K`` MM volume (matrix extents, in elements)."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        require_positive("m", self.m)
        require_positive("n", self.n)
        require_positive("k", self.k)

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations, ``M * N * K``."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """Total floating-point operations, ``2 * M * N * K``."""
        return 2 * self.macs


@dataclass(frozen=True, slots=True)
class DegenerateSpace:
    """A zero-volume MM ``space``: at least one extent is zero.

    :class:`ComputationSpace` deliberately rejects zero extents — the
    block grid, schedule walk, and roofline all divide by them. But
    ``multiply()`` must still honor BLAS semantics for degenerate
    operands (``K == 0`` means a zero-filled ``M x N`` C; ``M == 0`` or
    ``N == 0`` an empty one), so the engines short-circuit with this
    stand-in carrying the extents and zero op counts. Negative extents
    remain invalid.
    """

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        require_nonnegative("m", self.m)
        require_nonnegative("n", self.n)
        require_nonnegative("k", self.k)
        if self.m and self.n and self.k:
            raise ValueError(
                f"{self.m} x {self.n} x {self.k} is not degenerate; "
                f"use ComputationSpace"
            )

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations — zero by definition."""
        return 0

    @property
    def flops(self) -> int:
        """Total floating-point operations — zero by definition."""
        return 0


@dataclass(frozen=True, slots=True)
class BlockCoord:
    """Grid coordinates of one block: indices along M, N and K."""

    mi: int
    ni: int
    ki: int


class BlockGrid:
    """Partition of a :class:`ComputationSpace` into CB blocks.

    Parameters
    ----------
    space:
        The volume being partitioned.
    block:
        Nominal block extents. Blocks in the last row/column/slice along
        each dimension shrink to the remainder; nominal extents larger
        than the space collapse to a single block in that dimension.
    """

    def __init__(self, space: ComputationSpace, block: CBBlock) -> None:
        self.space = space
        self.nominal = block
        self._m_sizes = split_length(space.m, min(block.m, space.m))
        self._n_sizes = split_length(space.n, min(block.n, space.n))
        self._k_sizes = split_length(space.k, min(block.k, space.k))
        self._m_offsets = _prefix_offsets(self._m_sizes)
        self._n_offsets = _prefix_offsets(self._n_sizes)
        self._k_offsets = _prefix_offsets(self._k_sizes)

    # -- grid shape ---------------------------------------------------------

    @property
    def mb(self) -> int:
        """Number of blocks along M."""
        return len(self._m_sizes)

    @property
    def nb(self) -> int:
        """Number of blocks along N."""
        return len(self._n_sizes)

    @property
    def kb(self) -> int:
        """Number of blocks along K (reduction runs per C block)."""
        return len(self._k_sizes)

    @property
    def num_blocks(self) -> int:
        """Total blocks in the grid."""
        return self.mb * self.nb * self.kb

    # -- per-block geometry --------------------------------------------------

    def extent(self, coord: BlockCoord) -> CBBlock:
        """Actual extents of the block at ``coord`` (remainder-aware)."""
        self._check(coord)
        return CBBlock(
            m=self._m_sizes[coord.mi],
            n=self._n_sizes[coord.ni],
            k=self._k_sizes[coord.ki],
        )

    def origin(self, coord: BlockCoord) -> tuple[int, int, int]:
        """Element offset ``(m0, n0, k0)`` of the block at ``coord``."""
        self._check(coord)
        return (
            self._m_offsets[coord.mi],
            self._n_offsets[coord.ni],
            self._k_offsets[coord.ki],
        )

    def coords(self) -> Iterator[BlockCoord]:
        """All grid coordinates in plain row-major (M, N, K) order."""
        for mi in range(self.mb):
            for ni in range(self.nb):
                for ki in range(self.kb):
                    yield BlockCoord(mi, ni, ki)

    # -- batched geometry ----------------------------------------------------

    def size_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Block extents along each dimension as int64 arrays.

        ``size_arrays()[0][mi]`` equals ``extent(BlockCoord(mi, ·, ·)).m``
        — one gather per axis replaces the per-block ``extent()`` calls of
        the scalar walk.
        """
        return (
            np.asarray(self._m_sizes, dtype=np.int64),
            np.asarray(self._n_sizes, dtype=np.int64),
            np.asarray(self._k_sizes, dtype=np.int64),
        )

    def offset_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Block element origins along each dimension as int64 arrays."""
        return (
            np.asarray(self._m_offsets, dtype=np.int64),
            np.asarray(self._n_offsets, dtype=np.int64),
            np.asarray(self._k_offsets, dtype=np.int64),
        )

    def surface_arrays(
        self, mi: np.ndarray, ni: np.ndarray, ki: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-block IO surfaces ``(A, B, C)`` in elements, for an order.

        ``mi/ni/ki`` are coordinate arrays (one entry per scheduled
        block); the result matches ``extent(coord).surface_a`` (and b, c)
        element-wise.
        """
        m_sizes, n_sizes, k_sizes = self.size_arrays()
        em, en, ek = m_sizes[mi], n_sizes[ni], k_sizes[ki]
        return em * ek, ek * en, em * en

    def _check(self, coord: BlockCoord) -> None:
        if not (
            0 <= coord.mi < self.mb
            and 0 <= coord.ni < self.nb
            and 0 <= coord.ki < self.kb
        ):
            raise IndexError(
                f"{coord} outside grid of {self.mb} x {self.nb} x {self.kb} blocks"
            )


def _prefix_offsets(sizes: list[int]) -> list[int]:
    offsets = [0]
    for size in sizes[:-1]:
        offsets.append(offsets[-1] + size)
    return offsets
