"""Exact external-IO accounting for a block schedule (Section 2.2).

Two residency models are supported:

* **Adjacency** (default, ``capacity_elements=None``): local memory holds
  the three surfaces of the block being computed. Between consecutive
  blocks a surface stays resident iff the next block uses the *same*
  surface (same grid coordinates along its two dimensions). This is the
  Section 2.2 model the schedule ablations are framed in — it isolates
  exactly the turn reuses the boustrophedon buys.

* **Capacity** (``capacity_elements`` given): local memory is an LRU over
  whole block surfaces with a fixed element budget. The Section 4.3
  sizing rule ``C + 2(A+B) <= S`` guarantees the cache admits the
  *nominal* block's surfaces; when actual blocks are smaller (remainder
  strips, problems smaller than the nominal block), the same physical
  cache retains surfaces of earlier blocks too, and the adjacency model
  over-counts external traffic. :class:`SurfaceResidency` tracks that
  retention exactly; the engines use it so their counters match what a
  trace-driven LRU simulation of the same schedule observes.

Partial C surfaces are special in both models: abandoning one before its
reduction completes costs a write-back now *and* a re-fetch when the
schedule returns to it — "the IO for a partial result is twice that of a
completed result" (Section 2.2).

:func:`analyze_reuse` walks any schedule and tallies every external
transfer in elements, attributing it to A-fetch, B-fetch, C-refetch,
partial-C spill, or final-C write-back. The K-first schedule minimises the
total; the ablation bench compares all variants with these numbers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from repro.errors import ScheduleError
from repro.schedule.space import BlockCoord, BlockGrid
from repro.util import require_positive


@dataclass(slots=True)
class ReuseReport:
    """External-IO tally of one schedule, in matrix elements.

    Attributes
    ----------
    io_a, io_b:
        Elements of A / B fetched from external memory.
    io_c_spill:
        Partial-C elements written back before their reduction completed.
    io_c_refetch:
        Partial-C elements fetched back for further accumulation.
    io_c_final:
        Completed-C elements written back (always ``M * N``).
    reuse_a, reuse_b, reuse_c:
        Count of blocks whose A / B / partial-C surface was already
        resident from the previous block (the turn reuses).
    """

    io_a: int = 0
    io_b: int = 0
    io_c_spill: int = 0
    io_c_refetch: int = 0
    io_c_final: int = 0
    reuse_a: int = 0
    reuse_b: int = 0
    reuse_c: int = 0
    blocks: int = 0
    _progress: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)

    @property
    def io_total(self) -> int:
        """All external traffic: fetches plus write-backs."""
        return (
            self.io_a
            + self.io_b
            + self.io_c_spill
            + self.io_c_refetch
            + self.io_c_final
        )

    @property
    def io_input(self) -> int:
        """External traffic excluding the mandatory final C write-back."""
        return self.io_total - self.io_c_final


class SurfaceResidency:
    """LRU set of block surfaces under a fixed element budget.

    Keys are opaque surface identities (the engines use
    ``("A", mi, ki)``-style tuples); each key has a fixed element count.
    ``touch`` returns whether the surface was already resident — i.e.
    whether the fetch is free — installing it and evicting
    least-recently-used surfaces as needed. Surfaces named in ``pinned``
    are never evicted, so the block in flight cannot evict its own
    operands even when the budget is smaller than one block (the
    residency then runs over budget — streaming semantics, matching
    :class:`repro.memsim.lru.LRUCache`).
    """

    def __init__(
        self,
        capacity_elements: int,
        *,
        on_evict: Callable[[Hashable, int], None] | None = None,
    ) -> None:
        require_positive("capacity_elements", capacity_elements)
        self.capacity_elements = capacity_elements
        self._on_evict = on_evict
        self._entries: OrderedDict[Hashable, int] = OrderedDict()
        self._used = 0

    @property
    def used_elements(self) -> int:
        """Elements currently resident."""
        return self._used

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def touch(
        self,
        key: Hashable,
        elements: int,
        *,
        pinned: Iterable[Hashable] = (),
    ) -> bool:
        """Mark ``key`` most-recently-used; returns True if it was resident."""
        require_positive("elements", elements)
        hit = key in self._entries
        if hit:
            self._entries.move_to_end(key)
        else:
            self._entries[key] = elements
            self._used += elements
            self._evict_to_fit(frozenset(pinned))
        return hit

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` without counting an eviction (explicit release)."""
        elements = self._entries.pop(key, None)
        if elements is not None:
            self._used -= elements

    def _evict_to_fit(self, pinned: frozenset) -> None:
        while self._used > self.capacity_elements:
            victim = next(
                (k for k in self._entries if k not in pinned), None
            )
            if victim is None:
                return  # everything left is pinned: run over budget
            elements = self._entries.pop(victim)
            self._used -= elements
            if self._on_evict is not None:
                self._on_evict(victim, elements)


def validate_schedule(grid: BlockGrid, order: list[BlockCoord]) -> None:
    """Raise :class:`ScheduleError` unless ``order`` covers every block once."""
    seen = set()
    for coord in order:
        key = (coord.mi, coord.ni, coord.ki)
        if key in seen:
            raise ScheduleError(f"block {coord} scheduled more than once")
        seen.add(key)
    expected = grid.num_blocks
    if len(seen) != expected:
        raise ScheduleError(
            f"schedule covers {len(seen)} of {expected} blocks in the grid"
        )
    for coord in order:
        grid.extent(coord)  # raises IndexError if out of range


def analyze_reuse(
    grid: BlockGrid,
    order: list[BlockCoord],
    *,
    capacity_elements: int | None = None,
) -> ReuseReport:
    """Count the external IO implied by executing ``order`` on ``grid``.

    With ``capacity_elements=None`` the resident set is exactly the
    previous block's three surfaces — one block in flight, the next
    block's inputs streaming in. With a capacity, surfaces persist in an
    LRU under that element budget (:class:`SurfaceResidency`), which is
    what the Section 4.3-sized cache actually does when blocks are
    smaller than nominal; the engines pass their plan's budget so
    executor counters agree with a trace-driven LRU of the same walk.
    """
    validate_schedule(grid, order)
    if capacity_elements is not None:
        return _analyze_reuse_lru(grid, order, capacity_elements)
    report = ReuseReport()
    prev: BlockCoord | None = None

    for coord in order:
        ext = grid.extent(coord)
        report.blocks += 1

        # A surface: (mi, ki)
        if prev is not None and (prev.mi, prev.ki) == (coord.mi, coord.ki):
            report.reuse_a += 1
        else:
            report.io_a += ext.surface_a

        # B surface: (ki, ni)
        if prev is not None and (prev.ki, prev.ni) == (coord.ki, coord.ni):
            report.reuse_b += 1
        else:
            report.io_b += ext.surface_b

        # C surface: (mi, ni), stateful across the whole schedule.
        c_key = (coord.mi, coord.ni)
        if prev is not None and (prev.mi, prev.ni) == c_key:
            report.reuse_c += 1
        else:
            if prev is not None:
                _retire_previous(grid, prev, report)
            if report._progress.get(c_key, 0) > 0:
                # Returning to a C block spilled earlier: fetch it back.
                report.io_c_refetch += ext.surface_c
        report._progress[c_key] = report._progress.get(c_key, 0) + 1

        prev = coord

    if prev is not None:
        _retire_previous(grid, prev, report)
    return report


def _retire_previous(grid: BlockGrid, prev: BlockCoord, report: ReuseReport) -> None:
    """Write back the departing C surface as a spill or a final result."""
    c_key = (prev.mi, prev.ni)
    ext = grid.extent(prev)
    if report._progress.get(c_key, 0) >= grid.kb:
        report.io_c_final += ext.surface_c
    else:
        report.io_c_spill += ext.surface_c


def _analyze_reuse_lru(
    grid: BlockGrid, order: list[BlockCoord], capacity_elements: int
) -> ReuseReport:
    """The capacity-model walk behind :func:`analyze_reuse`.

    A partial C surface evicted by LRU pressure is a spill; touching it
    again later is a refetch. Completed C surfaces are written back and
    invalidated immediately — a finished result earns no further reuse,
    so holding it would only displace live surfaces.
    """
    report = ReuseReport()
    residency: SurfaceResidency | None = None

    def on_evict(key: Hashable, elements: int) -> None:
        if key[0] == "C":
            report.io_c_spill += elements

    residency = SurfaceResidency(capacity_elements, on_evict=on_evict)

    for coord in order:
        ext = grid.extent(coord)
        report.blocks += 1
        a_key = ("A", coord.mi, coord.ki)
        b_key = ("B", coord.ki, coord.ni)
        c_key = ("C", coord.mi, coord.ni)
        pinned = (a_key, b_key, c_key)

        if residency.touch(a_key, ext.surface_a, pinned=pinned):
            report.reuse_a += 1
        else:
            report.io_a += ext.surface_a

        if residency.touch(b_key, ext.surface_b, pinned=pinned):
            report.reuse_b += 1
        else:
            report.io_b += ext.surface_b

        progress_key = (coord.mi, coord.ni)
        done_before = report._progress.get(progress_key, 0)
        if residency.touch(c_key, ext.surface_c, pinned=pinned):
            if done_before:
                report.reuse_c += 1
        elif done_before:
            # Spilled earlier by capacity pressure: fetch the partials back.
            report.io_c_refetch += ext.surface_c
        report._progress[progress_key] = done_before + 1

        if report._progress[progress_key] == grid.kb:
            report.io_c_final += ext.surface_c
            residency.invalidate(c_key)

    return report
