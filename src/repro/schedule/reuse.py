"""Exact external-IO accounting for a block schedule (Section 2.2).

Two residency models are supported:

* **Adjacency** (default, ``capacity_elements=None``): local memory holds
  the three surfaces of the block being computed. Between consecutive
  blocks a surface stays resident iff the next block uses the *same*
  surface (same grid coordinates along its two dimensions). This is the
  Section 2.2 model the schedule ablations are framed in — it isolates
  exactly the turn reuses the boustrophedon buys.

* **Capacity** (``capacity_elements`` given): local memory is an LRU over
  whole block surfaces with a fixed element budget. The Section 4.3
  sizing rule ``C + 2(A+B) <= S`` guarantees the cache admits the
  *nominal* block's surfaces; when actual blocks are smaller (remainder
  strips, problems smaller than the nominal block), the same physical
  cache retains surfaces of earlier blocks too, and the adjacency model
  over-counts external traffic. :class:`SurfaceResidency` tracks that
  retention exactly; the engines use it so their counters match what a
  trace-driven LRU simulation of the same schedule observes.

Partial C surfaces are special in both models: abandoning one before its
reduction completes costs a write-back now *and* a re-fetch when the
schedule returns to it — "the IO for a partial result is twice that of a
completed result" (Section 2.2).

:func:`analyze_reuse` walks any schedule and tallies every external
transfer in elements, attributing it to A-fetch, B-fetch, C-refetch,
partial-C spill, or final-C write-back. The K-first schedule minimises the
total; the ablation bench compares all variants with these numbers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Iterable

import numpy as np

from repro.errors import ScheduleError
from repro.schedule.space import BlockCoord, BlockGrid
from repro.util import require_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.schedule.kfirst import OrderArrays


@dataclass(slots=True)
class ReuseReport:
    """External-IO tally of one schedule, in matrix elements.

    Attributes
    ----------
    io_a, io_b:
        Elements of A / B fetched from external memory.
    io_c_spill:
        Partial-C elements written back before their reduction completed.
    io_c_refetch:
        Partial-C elements fetched back for further accumulation.
    io_c_final:
        Completed-C elements written back (always ``M * N``).
    reuse_a, reuse_b, reuse_c:
        Count of blocks whose A / B / partial-C surface was already
        resident from the previous block (the turn reuses).
    """

    io_a: int = 0
    io_b: int = 0
    io_c_spill: int = 0
    io_c_refetch: int = 0
    io_c_final: int = 0
    reuse_a: int = 0
    reuse_b: int = 0
    reuse_c: int = 0
    blocks: int = 0
    _progress: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)

    @property
    def io_total(self) -> int:
        """All external traffic: fetches plus write-backs."""
        return (
            self.io_a
            + self.io_b
            + self.io_c_spill
            + self.io_c_refetch
            + self.io_c_final
        )

    @property
    def io_input(self) -> int:
        """External traffic excluding the mandatory final C write-back."""
        return self.io_total - self.io_c_final


class SurfaceResidency:
    """LRU set of block surfaces under a fixed element budget.

    Keys are opaque surface identities (the engines use
    ``("A", mi, ki)``-style tuples); each key has a fixed element count.
    ``touch`` returns whether the surface was already resident — i.e.
    whether the fetch is free — installing it and evicting
    least-recently-used surfaces as needed. Surfaces named in ``pinned``
    are never evicted, so the block in flight cannot evict its own
    operands even when the budget is smaller than one block (the
    residency then runs over budget — streaming semantics, matching
    :class:`repro.memsim.lru.LRUCache`).
    """

    def __init__(
        self,
        capacity_elements: int,
        *,
        on_evict: Callable[[Hashable, int], None] | None = None,
    ) -> None:
        require_positive("capacity_elements", capacity_elements)
        self.capacity_elements = capacity_elements
        self._on_evict = on_evict
        self._entries: OrderedDict[Hashable, int] = OrderedDict()
        self._used = 0

    @property
    def used_elements(self) -> int:
        """Elements currently resident."""
        return self._used

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def touch(
        self,
        key: Hashable,
        elements: int,
        *,
        pinned: Iterable[Hashable] = (),
    ) -> bool:
        """Mark ``key`` most-recently-used; returns True if it was resident."""
        require_positive("elements", elements)
        hit = key in self._entries
        if hit:
            self._entries.move_to_end(key)
        else:
            self._entries[key] = elements
            self._used += elements
            self._evict_to_fit(frozenset(pinned))
        return hit

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` without counting an eviction (explicit release)."""
        elements = self._entries.pop(key, None)
        if elements is not None:
            self._used -= elements

    def _evict_to_fit(self, pinned: frozenset) -> None:
        while self._used > self.capacity_elements:
            victim = next(
                (k for k in self._entries if k not in pinned), None
            )
            if victim is None:
                return  # everything left is pinned: run over budget
            elements = self._entries.pop(victim)
            self._used -= elements
            if self._on_evict is not None:
                self._on_evict(victim, elements)


def validate_schedule(grid: BlockGrid, order: list[BlockCoord]) -> None:
    """Raise :class:`ScheduleError` unless ``order`` covers every block once."""
    seen = set()
    for coord in order:
        key = (coord.mi, coord.ni, coord.ki)
        if key in seen:
            raise ScheduleError(f"block {coord} scheduled more than once")
        seen.add(key)
    expected = grid.num_blocks
    if len(seen) != expected:
        raise ScheduleError(
            f"schedule covers {len(seen)} of {expected} blocks in the grid"
        )
    for coord in order:
        grid.extent(coord)  # raises IndexError if out of range


def analyze_reuse(
    grid: BlockGrid,
    order: list[BlockCoord],
    *,
    capacity_elements: int | None = None,
) -> ReuseReport:
    """Count the external IO implied by executing ``order`` on ``grid``.

    With ``capacity_elements=None`` the resident set is exactly the
    previous block's three surfaces — one block in flight, the next
    block's inputs streaming in. With a capacity, surfaces persist in an
    LRU under that element budget (:class:`SurfaceResidency`), which is
    what the Section 4.3-sized cache actually does when blocks are
    smaller than nominal; the engines pass their plan's budget so
    executor counters agree with a trace-driven LRU of the same walk.
    """
    validate_schedule(grid, order)
    if capacity_elements is not None:
        return _analyze_reuse_lru(grid, order, capacity_elements)
    report = ReuseReport()
    prev: BlockCoord | None = None

    for coord in order:
        ext = grid.extent(coord)
        report.blocks += 1

        # A surface: (mi, ki)
        if prev is not None and (prev.mi, prev.ki) == (coord.mi, coord.ki):
            report.reuse_a += 1
        else:
            report.io_a += ext.surface_a

        # B surface: (ki, ni)
        if prev is not None and (prev.ki, prev.ni) == (coord.ki, coord.ni):
            report.reuse_b += 1
        else:
            report.io_b += ext.surface_b

        # C surface: (mi, ni), stateful across the whole schedule.
        c_key = (coord.mi, coord.ni)
        if prev is not None and (prev.mi, prev.ni) == c_key:
            report.reuse_c += 1
        else:
            if prev is not None:
                _retire_previous(grid, prev, report)
            if report._progress.get(c_key, 0) > 0:
                # Returning to a C block spilled earlier: fetch it back.
                report.io_c_refetch += ext.surface_c
        report._progress[c_key] = report._progress.get(c_key, 0) + 1

        prev = coord

    if prev is not None:
        _retire_previous(grid, prev, report)
    return report


def _retire_previous(grid: BlockGrid, prev: BlockCoord, report: ReuseReport) -> None:
    """Write back the departing C surface as a spill or a final result."""
    c_key = (prev.mi, prev.ni)
    ext = grid.extent(prev)
    if report._progress.get(c_key, 0) >= grid.kb:
        report.io_c_final += ext.surface_c
    else:
        report.io_c_spill += ext.surface_c


def _analyze_reuse_lru(
    grid: BlockGrid, order: list[BlockCoord], capacity_elements: int
) -> ReuseReport:
    """The capacity-model walk behind :func:`analyze_reuse`.

    A partial C surface evicted by LRU pressure is a spill; touching it
    again later is a refetch. Completed C surfaces are written back and
    invalidated immediately — a finished result earns no further reuse,
    so holding it would only displace live surfaces.
    """
    report = ReuseReport()
    residency: SurfaceResidency | None = None

    def on_evict(key: Hashable, elements: int) -> None:
        if key[0] == "C":
            report.io_c_spill += elements

    residency = SurfaceResidency(capacity_elements, on_evict=on_evict)

    for coord in order:
        ext = grid.extent(coord)
        report.blocks += 1
        a_key = ("A", coord.mi, coord.ki)
        b_key = ("B", coord.ki, coord.ni)
        c_key = ("C", coord.mi, coord.ni)
        pinned = (a_key, b_key, c_key)

        if residency.touch(a_key, ext.surface_a, pinned=pinned):
            report.reuse_a += 1
        else:
            report.io_a += ext.surface_a

        if residency.touch(b_key, ext.surface_b, pinned=pinned):
            report.reuse_b += 1
        else:
            report.io_b += ext.surface_b

        progress_key = (coord.mi, coord.ni)
        done_before = report._progress.get(progress_key, 0)
        if residency.touch(c_key, ext.surface_c, pinned=pinned):
            if done_before:
                report.reuse_c += 1
        elif done_before:
            # Spilled earlier by capacity pressure: fetch the partials back.
            report.io_c_refetch += ext.surface_c
        report._progress[progress_key] = done_before + 1

        if report._progress[progress_key] == grid.kb:
            report.io_c_final += ext.surface_c
            residency.invalidate(c_key)

    return report


# -- batched (structure-of-arrays) analysis ----------------------------------


def occurrence_index(keys: np.ndarray) -> np.ndarray:
    """0-based occurrence counter per element of ``keys``.

    ``occurrence_index(k)[i]`` is how many earlier positions hold the
    same key — the vectorized form of the scalar walks' ``progress``
    dict (one stable argsort instead of N dict updates).
    """
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    idx = np.arange(n, dtype=np.int64)
    first = np.ones(n, dtype=bool)
    first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    occ_sorted = idx - np.maximum.accumulate(np.where(first, idx, 0))
    occ = np.empty(n, dtype=np.int64)
    occ[order] = occ_sorted
    return occ


def validate_order_arrays(grid: BlockGrid, order: "OrderArrays") -> None:
    """Raise :class:`ScheduleError` unless ``order`` covers every block once.

    Vectorized counterpart of :func:`validate_schedule`: one bincount
    over linearised coordinates replaces the per-coord set bookkeeping.
    """
    mi, ni, ki = order.mi, order.ni, order.ki
    if not (len(mi) == len(ni) == len(ki)):
        raise ScheduleError("order arrays must have equal lengths")
    if len(mi) == 0:
        raise ScheduleError(f"schedule covers 0 of {grid.num_blocks} blocks in the grid")
    for name, arr, count in (("mi", mi, grid.mb), ("ni", ni, grid.nb), ("ki", ki, grid.kb)):
        if int(arr.min()) < 0 or int(arr.max()) >= count:
            raise ScheduleError(f"{name} coordinates outside grid of {count} blocks")
    linear = (mi * grid.nb + ni) * grid.kb + ki
    counts = np.bincount(linear, minlength=grid.num_blocks)
    if counts.max(initial=0) > 1:
        raise ScheduleError("a block is scheduled more than once")
    covered = int((counts > 0).sum())
    if covered != grid.num_blocks or len(mi) != grid.num_blocks:
        raise ScheduleError(
            f"schedule covers {covered} of {grid.num_blocks} blocks in the grid"
        )


def surface_lru_replay(
    a_ids: list[int],
    b_ids: list[int],
    c_ids: list[int],
    a_sizes: list[int],
    b_sizes: list[int],
    c_sizes: list[int],
    c_final: list[bool],
    capacity_elements: int,
    c_base: int,
) -> tuple[bytearray, bytearray, bytearray, int]:
    """Grouped replay of :class:`SurfaceResidency` over a whole schedule.

    The same technique as :mod:`repro.memsim.vectorized`: precompute the
    entire touch stream as flat integer arrays, then run one tight loop
    whose state transitions are exactly ``touch(a) / touch(b) / touch(c)
    / invalidate-on-completion`` per block — an insertion-ordered dict
    stands in for the ``OrderedDict``, and eviction scans oldest-first
    skipping the three pinned (current-block) keys, matching
    ``SurfaceResidency._evict_to_fit`` decision-for-decision.

    ``*_ids`` are disjoint integer key ranges (C keys at ``>= c_base``
    so evictions of partial results can be attributed); ``c_final[i]``
    marks block ``i`` as the last touch of its C surface, after which
    the surface is invalidated exactly as the scalar walks do. Returns
    per-block hit flags for the three surfaces plus the total elements
    of partial-C surfaces evicted by capacity pressure (spills).
    """
    require_positive("capacity_elements", capacity_elements)
    n = len(a_ids)
    a_hit = bytearray(n)
    b_hit = bytearray(n)
    c_hit = bytearray(n)
    entries: dict[int, int] = {}
    pop = entries.pop
    used = 0
    spill = 0
    touches = zip(a_ids, b_ids, c_ids, a_sizes, b_sizes, c_sizes, c_final)
    for i, (a, b, c, size_a, size_b, size_c, final) in enumerate(touches):
        size = pop(a, None)
        if size is None:
            size = size_a
            entries[a] = size
            used += size
            while used > capacity_elements:
                victim = -1
                for key in entries:
                    if key != a and key != b and key != c:
                        victim = key
                        break
                if victim < 0:
                    break
                evicted = pop(victim)
                used -= evicted
                if victim >= c_base:
                    spill += evicted
        else:
            entries[a] = size
            a_hit[i] = 1

        size = pop(b, None)
        if size is None:
            size = size_b
            entries[b] = size
            used += size
            while used > capacity_elements:
                victim = -1
                for key in entries:
                    if key != a and key != b and key != c:
                        victim = key
                        break
                if victim < 0:
                    break
                evicted = pop(victim)
                used -= evicted
                if victim >= c_base:
                    spill += evicted
        else:
            entries[b] = size
            b_hit[i] = 1

        size = pop(c, None)
        if size is None:
            size = size_c
            entries[c] = size
            used += size
            while used > capacity_elements:
                victim = -1
                for key in entries:
                    if key != a and key != b and key != c:
                        victim = key
                        break
                if victim < 0:
                    break
                evicted = pop(victim)
                used -= evicted
                if victim >= c_base:
                    spill += evicted
        else:
            entries[c] = size
            c_hit[i] = 1

        if final:
            used -= pop(c)
    return a_hit, b_hit, c_hit, spill


def encode_surface_ids(
    grid: BlockGrid, order: "OrderArrays"
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Disjoint integer key ranges for the A/B/C surfaces of an order.

    Returns ``(a_ids, b_ids, c_ids, c_base)`` with A keys in
    ``[0, mb*kb)``, B keys in ``[mb*kb, mb*kb + kb*nb)`` and C keys at
    ``>= c_base`` — the integer analogue of the engines' tuple keys.
    """
    b_base = grid.mb * grid.kb
    c_base = b_base + grid.kb * grid.nb
    a_ids = order.mi * grid.kb + order.ki
    b_ids = b_base + order.ki * grid.nb + order.ni
    c_ids = c_base + order.mi * grid.nb + order.ni
    return a_ids, b_ids, c_ids, c_base


def analyze_reuse_batch(
    grid: BlockGrid,
    order: "OrderArrays",
    *,
    capacity_elements: int | None = None,
) -> ReuseReport:
    """Batched :func:`analyze_reuse`: identical tallies, no per-block loop.

    The adjacency model collapses to shifted-array comparisons plus a
    segment pass over the C-surface key stream; the capacity model runs
    :func:`surface_lru_replay`. Both are equal to the scalar analyzer
    field-for-field for any valid order (hypothesis-asserted in tests).
    """
    validate_order_arrays(grid, order)
    mi, ni, ki = order.mi, order.ni, order.ki
    n = len(mi)
    sa, sb, sc = grid.surface_arrays(mi, ni, ki)
    c_keys = mi * grid.nb + ni
    occ = occurrence_index(c_keys)

    report = ReuseReport(blocks=n)
    if capacity_elements is None:
        same_a = np.zeros(n, dtype=bool)
        same_a[1:] = (mi[1:] == mi[:-1]) & (ki[1:] == ki[:-1])
        same_b = np.zeros(n, dtype=bool)
        same_b[1:] = (ki[1:] == ki[:-1]) & (ni[1:] == ni[:-1])
        seg_start = np.ones(n, dtype=bool)
        seg_start[1:] = c_keys[1:] != c_keys[:-1]
        seg_end = np.ones(n, dtype=bool)
        seg_end[:-1] = seg_start[1:]
        completed = (occ + 1) >= grid.kb

        report.reuse_a = int(same_a.sum())
        report.io_a = int(sa[~same_a].sum())
        report.reuse_b = int(same_b.sum())
        report.io_b = int(sb[~same_b].sum())
        report.reuse_c = int(n - seg_start.sum())
        report.io_c_refetch = int(sc[seg_start & (occ > 0)].sum())
        report.io_c_final = int(sc[seg_end & completed].sum())
        report.io_c_spill = int(sc[seg_end & ~completed].sum())
        return report

    a_ids, b_ids, c_ids, c_base = encode_surface_ids(grid, order)
    final = occ == grid.kb - 1
    a_hit_raw, b_hit_raw, c_hit_raw, spill = surface_lru_replay(
        a_ids.tolist(),
        b_ids.tolist(),
        c_ids.tolist(),
        sa.tolist(),
        sb.tolist(),
        sc.tolist(),
        final.tolist(),
        capacity_elements,
        c_base,
    )
    a_hit = np.frombuffer(a_hit_raw, dtype=np.uint8).astype(bool)
    b_hit = np.frombuffer(b_hit_raw, dtype=np.uint8).astype(bool)
    c_hit = np.frombuffer(c_hit_raw, dtype=np.uint8).astype(bool)

    report.reuse_a = int(a_hit.sum())
    report.io_a = int(sa[~a_hit].sum())
    report.reuse_b = int(b_hit.sum())
    report.io_b = int(sb[~b_hit].sum())
    report.reuse_c = int((c_hit & (occ > 0)).sum())
    report.io_c_refetch = int(sc[~c_hit & (occ > 0)].sum())
    report.io_c_final = int(sc[final].sum())
    report.io_c_spill = spill
    return report
