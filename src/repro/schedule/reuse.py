"""Exact external-IO accounting for a block schedule (Section 2.2).

Model: local memory holds the three surfaces of the block being computed.
Between consecutive blocks a surface stays resident iff the next block uses
the *same* surface (same grid coordinates along its two dimensions).
Partial C surfaces are special: abandoning one before its reduction
completes costs a write-back now *and* a re-fetch when the schedule returns
to it — "the IO for a partial result is twice that of a completed result"
(Section 2.2).

:func:`analyze_reuse` walks any schedule and tallies every external
transfer in elements, attributing it to A-fetch, B-fetch, C-refetch,
partial-C spill, or final-C write-back. The K-first schedule minimises the
total; the ablation bench compares all variants with these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.schedule.space import BlockCoord, BlockGrid


@dataclass(slots=True)
class ReuseReport:
    """External-IO tally of one schedule, in matrix elements.

    Attributes
    ----------
    io_a, io_b:
        Elements of A / B fetched from external memory.
    io_c_spill:
        Partial-C elements written back before their reduction completed.
    io_c_refetch:
        Partial-C elements fetched back for further accumulation.
    io_c_final:
        Completed-C elements written back (always ``M * N``).
    reuse_a, reuse_b, reuse_c:
        Count of blocks whose A / B / partial-C surface was already
        resident from the previous block (the turn reuses).
    """

    io_a: int = 0
    io_b: int = 0
    io_c_spill: int = 0
    io_c_refetch: int = 0
    io_c_final: int = 0
    reuse_a: int = 0
    reuse_b: int = 0
    reuse_c: int = 0
    blocks: int = 0
    _progress: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)

    @property
    def io_total(self) -> int:
        """All external traffic: fetches plus write-backs."""
        return (
            self.io_a
            + self.io_b
            + self.io_c_spill
            + self.io_c_refetch
            + self.io_c_final
        )

    @property
    def io_input(self) -> int:
        """External traffic excluding the mandatory final C write-back."""
        return self.io_total - self.io_c_final


def validate_schedule(grid: BlockGrid, order: list[BlockCoord]) -> None:
    """Raise :class:`ScheduleError` unless ``order`` covers every block once."""
    seen = set()
    for coord in order:
        key = (coord.mi, coord.ni, coord.ki)
        if key in seen:
            raise ScheduleError(f"block {coord} scheduled more than once")
        seen.add(key)
    expected = grid.num_blocks
    if len(seen) != expected:
        raise ScheduleError(
            f"schedule covers {len(seen)} of {expected} blocks in the grid"
        )
    for coord in order:
        grid.extent(coord)  # raises IndexError if out of range


def analyze_reuse(grid: BlockGrid, order: list[BlockCoord]) -> ReuseReport:
    """Count the external IO implied by executing ``order`` on ``grid``.

    The resident set is exactly the previous block's three surfaces, which
    matches the LRU-sized local memory of Section 4.3 (one block in flight,
    the next block's inputs streaming in).
    """
    validate_schedule(grid, order)
    report = ReuseReport()
    prev: BlockCoord | None = None

    for coord in order:
        ext = grid.extent(coord)
        report.blocks += 1

        # A surface: (mi, ki)
        if prev is not None and (prev.mi, prev.ki) == (coord.mi, coord.ki):
            report.reuse_a += 1
        else:
            report.io_a += ext.surface_a

        # B surface: (ki, ni)
        if prev is not None and (prev.ki, prev.ni) == (coord.ki, coord.ni):
            report.reuse_b += 1
        else:
            report.io_b += ext.surface_b

        # C surface: (mi, ni), stateful across the whole schedule.
        c_key = (coord.mi, coord.ni)
        if prev is not None and (prev.mi, prev.ni) == c_key:
            report.reuse_c += 1
        else:
            if prev is not None:
                _retire_previous(grid, prev, report)
            if report._progress.get(c_key, 0) > 0:
                # Returning to a C block spilled earlier: fetch it back.
                report.io_c_refetch += ext.surface_c
        report._progress[c_key] = report._progress.get(c_key, 0) + 1

        prev = coord

    if prev is not None:
        _retire_previous(grid, prev, report)
    return report


def _retire_previous(grid: BlockGrid, prev: BlockCoord, report: ReuseReport) -> None:
    """Write back the departing C surface as a spill or a final result."""
    c_key = (prev.mi, prev.ni)
    ext = grid.extent(prev)
    if report._progress.get(c_key, 0) >= grid.kb:
        report.io_c_final += ext.surface_c
    else:
        report.io_c_spill += ext.surface_c
