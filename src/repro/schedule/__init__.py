"""Block partitioning and scheduling — Section 2 of the paper.

The ``M x N x K`` computation space is cut into a grid of uniform CB blocks
(:mod:`repro.schedule.space`), which are then ordered for execution. The
paper's schedule (Algorithm 2, :mod:`repro.schedule.kfirst`) traverses the
reduction dimension K first (reusing the partial-result surface in place),
flipping traversal direction at the end of every run so that each turn
shares an input surface with the previous block. Alternative orders and a
non-flipping baseline live in :mod:`repro.schedule.variants`; the external
IO each order implies is counted exactly by :mod:`repro.schedule.reuse`.
"""

from repro.schedule.space import (
    BlockCoord,
    BlockGrid,
    ComputationSpace,
    DegenerateSpace,
)
from repro.schedule.kfirst import OrderArrays, kfirst_order_arrays, kfirst_schedule
from repro.schedule.variants import (
    ORDER_ARRAY_BUILDERS,
    SCHEDULE_BUILDERS,
    build_order_arrays,
    build_schedule,
    mfirst_order_arrays,
    mfirst_schedule,
    naive_order_arrays,
    naive_schedule,
    nfirst_order_arrays,
    nfirst_schedule,
)
from repro.schedule.reuse import (
    ReuseReport,
    SurfaceResidency,
    analyze_reuse,
    analyze_reuse_batch,
    encode_surface_ids,
    occurrence_index,
    surface_lru_replay,
    validate_order_arrays,
    validate_schedule,
)

__all__ = [
    "BlockCoord",
    "BlockGrid",
    "ComputationSpace",
    "DegenerateSpace",
    "OrderArrays",
    "kfirst_order_arrays",
    "kfirst_schedule",
    "ORDER_ARRAY_BUILDERS",
    "SCHEDULE_BUILDERS",
    "build_order_arrays",
    "build_schedule",
    "mfirst_order_arrays",
    "mfirst_schedule",
    "naive_order_arrays",
    "naive_schedule",
    "nfirst_order_arrays",
    "nfirst_schedule",
    "ReuseReport",
    "SurfaceResidency",
    "analyze_reuse",
    "analyze_reuse_batch",
    "encode_surface_ids",
    "occurrence_index",
    "surface_lru_replay",
    "validate_order_arrays",
    "validate_schedule",
]
