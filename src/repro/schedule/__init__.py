"""Block partitioning and scheduling — Section 2 of the paper.

The ``M x N x K`` computation space is cut into a grid of uniform CB blocks
(:mod:`repro.schedule.space`), which are then ordered for execution. The
paper's schedule (Algorithm 2, :mod:`repro.schedule.kfirst`) traverses the
reduction dimension K first (reusing the partial-result surface in place),
flipping traversal direction at the end of every run so that each turn
shares an input surface with the previous block. Alternative orders and a
non-flipping baseline live in :mod:`repro.schedule.variants`; the external
IO each order implies is counted exactly by :mod:`repro.schedule.reuse`.
"""

from repro.schedule.space import BlockCoord, BlockGrid, ComputationSpace
from repro.schedule.kfirst import kfirst_schedule
from repro.schedule.variants import (
    SCHEDULE_BUILDERS,
    build_schedule,
    mfirst_schedule,
    nfirst_schedule,
    naive_schedule,
)
from repro.schedule.reuse import (
    ReuseReport,
    SurfaceResidency,
    analyze_reuse,
    validate_schedule,
)

__all__ = [
    "BlockCoord",
    "BlockGrid",
    "ComputationSpace",
    "kfirst_schedule",
    "SCHEDULE_BUILDERS",
    "build_schedule",
    "mfirst_schedule",
    "nfirst_schedule",
    "naive_schedule",
    "ReuseReport",
    "SurfaceResidency",
    "analyze_reuse",
    "validate_schedule",
]
