"""Alternative block orders: ablations against Algorithm 2.

* :func:`naive_schedule` — the same loop nest as Algorithm 2 but *without*
  direction flips (every loop restarts at index 0). This is the strawman of
  Section 2.2: it forfeits every A/B turn reuse.
* :func:`mfirst_schedule` / :func:`nfirst_schedule` — boustrophedon
  traversals that put M or N innermost instead of K. These complete A or B
  reuse runs first and therefore must spill partial C surfaces, showing why
  the paper calls reduction-first optimal (a partial surface costs twice:
  write-back now, fetch later).

All builders return every block exactly once
(:func:`repro.schedule.reuse.validate_schedule` enforces this in tests).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.schedule.kfirst import (
    OrderArrays,
    _boustrophedon_arrays,
    _swept,
    kfirst_order_arrays,
    kfirst_schedule,
)
from repro.schedule.space import BlockCoord, BlockGrid


def naive_schedule(grid: BlockGrid) -> list[BlockCoord]:
    """Algorithm 2's loop nest with no direction flips (always ascending).

    Uses the same outer-dimension rule as :func:`kfirst_schedule`
    (N outer when ``N >= M``), so comparing the two isolates exactly the
    boustrophedon flips — the Section 2.2 ablation.
    """
    order: list[BlockCoord] = []
    if grid.space.n >= grid.space.m:
        for ni in range(grid.nb):
            for mi in range(grid.mb):
                for ki in range(grid.kb):
                    order.append(BlockCoord(mi, ni, ki))
    else:
        for mi in range(grid.mb):
            for ni in range(grid.nb):
                for ki in range(grid.kb):
                    order.append(BlockCoord(mi, ni, ki))
    return order


def mfirst_schedule(grid: BlockGrid) -> list[BlockCoord]:
    """Boustrophedon traversal with M innermost (B-surface runs first).

    Within a run, consecutive blocks share their B surface ``(ki, ni)``;
    partial C surfaces are abandoned after every block and must round-trip
    through external memory.
    """
    order: list[BlockCoord] = []
    for ni in _swept(grid.nb, True):
        for ki in _swept(grid.kb, ni % 2 == 0):
            for mi in _swept(grid.mb, (ki + ni) % 2 == 0):
                order.append(BlockCoord(mi, ni, ki))
    return order


def nfirst_schedule(grid: BlockGrid) -> list[BlockCoord]:
    """Boustrophedon traversal with N innermost (A-surface runs first)."""
    order: list[BlockCoord] = []
    for mi in _swept(grid.mb, True):
        for ki in _swept(grid.kb, mi % 2 == 0):
            for ni in _swept(grid.nb, (ki + mi) % 2 == 0):
                order.append(BlockCoord(mi, ni, ki))
    return order


def naive_order_arrays(grid: BlockGrid) -> OrderArrays:
    """:func:`naive_schedule` as coordinate arrays (one meshgrid)."""
    if grid.space.n >= grid.space.m:
        ni, mi, ki = np.meshgrid(
            np.arange(grid.nb, dtype=np.int64),
            np.arange(grid.mb, dtype=np.int64),
            np.arange(grid.kb, dtype=np.int64),
            indexing="ij",
        )
    else:
        mi, ni, ki = np.meshgrid(
            np.arange(grid.mb, dtype=np.int64),
            np.arange(grid.nb, dtype=np.int64),
            np.arange(grid.kb, dtype=np.int64),
            indexing="ij",
        )
    return OrderArrays(mi=mi.reshape(-1), ni=ni.reshape(-1), ki=ki.reshape(-1))


def mfirst_order_arrays(grid: BlockGrid) -> OrderArrays:
    """:func:`mfirst_schedule` as coordinate arrays."""
    ni, ki, mi = _boustrophedon_arrays(grid.nb, grid.kb, grid.mb)
    return OrderArrays(mi=mi, ni=ni, ki=ki)


def nfirst_order_arrays(grid: BlockGrid) -> OrderArrays:
    """:func:`nfirst_schedule` as coordinate arrays."""
    mi, ki, ni = _boustrophedon_arrays(grid.mb, grid.kb, grid.nb)
    return OrderArrays(mi=mi, ni=ni, ki=ki)


#: Vectorized counterparts of :data:`SCHEDULE_BUILDERS`, by the same names.
ORDER_ARRAY_BUILDERS: dict[str, Callable[[BlockGrid], OrderArrays]] = {
    "k-first": kfirst_order_arrays,
    "naive": naive_order_arrays,
    "m-first": mfirst_order_arrays,
    "n-first": nfirst_order_arrays,
}


def build_order_arrays(name: str, grid: BlockGrid) -> OrderArrays:
    """Build a named schedule's coordinate arrays (vectorized)."""
    try:
        builder = ORDER_ARRAY_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule {name!r}; available: {sorted(ORDER_ARRAY_BUILDERS)}"
        ) from None
    return builder(grid)


SCHEDULE_BUILDERS: dict[str, Callable[[BlockGrid], list[BlockCoord]]] = {
    "k-first": kfirst_schedule,
    "naive": naive_schedule,
    "m-first": mfirst_schedule,
    "n-first": nfirst_schedule,
}


def build_schedule(name: str, grid: BlockGrid) -> list[BlockCoord]:
    """Build a named schedule; see :data:`SCHEDULE_BUILDERS` for options."""
    try:
        builder = SCHEDULE_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule {name!r}; available: {sorted(SCHEDULE_BUILDERS)}"
        ) from None
    return builder(grid)
