"""Algorithm 2 — the K-first boustrophedon block schedule.

The reduction dimension K is traversed innermost, so each C block's partial
results complete in one uninterrupted run of in-place accumulation. At the
end of every run the traversal *turns* rather than restarting at index 0:

* **m-turn** (middle loop advances): the previous and next block sit at the
  same ``(ki, ni)``, so the **B surface** stays resident — no refetch.
* **n-turn** (outer loop advances): the previous and next block share
  ``(mi, ki)``, so the **A surface** stays resident.

Without the turns, no A or B surface would ever be reused across runs —
``O(Mb*Nb + Nb)`` missed reuses (Section 2.2), which the ablation bench
measures via :func:`repro.schedule.reuse.analyze_reuse`.

The pseudocode in the paper assumes ``N >= M`` (outer loop over N so the
larger B surfaces get the more frequent m-turn reuse); for ``M > N`` the
outer two loops swap. :func:`kfirst_schedule` applies that rule
automatically unless overridden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

import numpy as np

from repro.schedule.space import BlockCoord, BlockGrid


def _swept(count: int, forward: bool) -> range:
    """Indices ``0..count-1`` in the requested direction."""
    return range(count) if forward else range(count - 1, -1, -1)


def kfirst_schedule(
    grid: BlockGrid,
    *,
    outer: Literal["auto", "n", "m"] = "auto",
) -> list[BlockCoord]:
    """Order the grid's blocks per Algorithm 2.

    Parameters
    ----------
    grid:
        The block grid to traverse.
    outer:
        Which dimension the outer loop sweeps. ``"auto"`` (the paper's
        rule) picks N when ``N >= M`` — reusing the larger B surface more
        frequently — and M otherwise.

    Returns
    -------
    list[BlockCoord]
        Every block exactly once, consecutive blocks always sharing a
        surface (partial C within a run, B at m-turns, A at n-turns — or
        the A/B mirror image when the outer loop is M).
    """
    if outer == "auto":
        outer = "n" if grid.space.n >= grid.space.m else "m"

    order: list[BlockCoord] = []
    if outer == "n":
        for ni in _swept(grid.nb, True):
            for mi in _swept(grid.mb, ni % 2 == 0):
                for ki in _swept(grid.kb, (mi + ni) % 2 == 0):
                    order.append(BlockCoord(mi, ni, ki))
    elif outer == "m":
        for mi in _swept(grid.mb, True):
            for ni in _swept(grid.nb, mi % 2 == 0):
                for ki in _swept(grid.kb, (mi + ni) % 2 == 0):
                    order.append(BlockCoord(mi, ni, ki))
    else:
        raise ValueError(f"outer must be 'auto', 'n' or 'm', got {outer!r}")
    return order


@dataclass(frozen=True)
class OrderArrays:
    """A block schedule as three parallel coordinate arrays.

    ``(mi[i], ni[i], ki[i])`` is the i-th scheduled block — the same
    sequence the corresponding ``list[BlockCoord]`` builder produces, but
    enumerable in one shot and indexable into
    :meth:`~repro.schedule.space.BlockGrid.size_arrays` gathers. This is
    the structure-of-arrays form the batch analyzer walks.
    """

    mi: np.ndarray
    ni: np.ndarray
    ki: np.ndarray

    def __len__(self) -> int:
        return len(self.mi)

    def coords(self) -> list[BlockCoord]:
        """Materialise as the scalar builders' ``list[BlockCoord]``."""
        return [
            BlockCoord(int(m), int(n), int(k))
            for m, n, k in zip(self.mi, self.ni, self.ki)
        ]


def _boustrophedon_arrays(
    outer_count: int, middle_count: int, inner_count: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays of the generic three-loop boustrophedon nest.

    The outer loop ascends; the middle loop ascends iff the outer index
    is even; the inner loop ascends iff (outer + middle) is even —
    exactly the flip rule of Algorithm 2, computed as one broadcast.
    Returns flat arrays of shape ``(outer*middle*inner,)`` in nest order.
    """
    shape = (outer_count, middle_count, inner_count)
    outer = np.arange(outer_count, dtype=np.int64)
    mid_fwd = np.arange(middle_count, dtype=np.int64)
    middle = np.where(
        (outer % 2 == 0)[:, None], mid_fwd[None, :], mid_fwd[::-1][None, :]
    )
    inner_fwd = np.arange(inner_count, dtype=np.int64)
    inner_asc = (middle + outer[:, None]) % 2 == 0
    inner = np.where(
        inner_asc[:, :, None],
        inner_fwd[None, None, :],
        inner_fwd[::-1][None, None, :],
    )
    return (
        np.broadcast_to(outer[:, None, None], shape).reshape(-1),
        np.broadcast_to(middle[:, :, None], shape).reshape(-1),
        inner.reshape(-1),
    )


def kfirst_order_arrays(
    grid: BlockGrid,
    *,
    outer: Literal["auto", "n", "m"] = "auto",
) -> OrderArrays:
    """Algorithm 2's block order as coordinate arrays.

    Element-for-element identical to :func:`kfirst_schedule` (asserted
    by tests and hypothesis), but produced by one vectorized broadcast
    instead of a three-deep Python loop — the enumeration half of the
    batch analyzer's fast path.
    """
    if outer == "auto":
        outer = "n" if grid.space.n >= grid.space.m else "m"
    if outer == "n":
        ni, mi, ki = _boustrophedon_arrays(grid.nb, grid.mb, grid.kb)
    elif outer == "m":
        mi, ni, ki = _boustrophedon_arrays(grid.mb, grid.nb, grid.kb)
    else:
        raise ValueError(f"outer must be 'auto', 'n' or 'm', got {outer!r}")
    return OrderArrays(mi=mi, ni=ni, ki=ki)


def kfirst_runs(
    grid: BlockGrid, *, outer: Literal["auto", "n", "m"] = "auto"
) -> Iterator[list[BlockCoord]]:
    """The schedule grouped into complete reduction runs.

    Each yielded list is one K-run: the ``grid.kb`` blocks that accumulate
    a single C block to completion. Executors use this to know when a
    partial-result surface is finished and may be written back to DRAM.
    """
    order = kfirst_schedule(grid, outer=outer)
    for start in range(0, len(order), grid.kb):
        yield order[start : start + grid.kb]
