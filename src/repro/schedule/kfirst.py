"""Algorithm 2 — the K-first boustrophedon block schedule.

The reduction dimension K is traversed innermost, so each C block's partial
results complete in one uninterrupted run of in-place accumulation. At the
end of every run the traversal *turns* rather than restarting at index 0:

* **m-turn** (middle loop advances): the previous and next block sit at the
  same ``(ki, ni)``, so the **B surface** stays resident — no refetch.
* **n-turn** (outer loop advances): the previous and next block share
  ``(mi, ki)``, so the **A surface** stays resident.

Without the turns, no A or B surface would ever be reused across runs —
``O(Mb*Nb + Nb)`` missed reuses (Section 2.2), which the ablation bench
measures via :func:`repro.schedule.reuse.analyze_reuse`.

The pseudocode in the paper assumes ``N >= M`` (outer loop over N so the
larger B surfaces get the more frequent m-turn reuse); for ``M > N`` the
outer two loops swap. :func:`kfirst_schedule` applies that rule
automatically unless overridden.
"""

from __future__ import annotations

from typing import Iterator, Literal

from repro.schedule.space import BlockCoord, BlockGrid


def _swept(count: int, forward: bool) -> range:
    """Indices ``0..count-1`` in the requested direction."""
    return range(count) if forward else range(count - 1, -1, -1)


def kfirst_schedule(
    grid: BlockGrid,
    *,
    outer: Literal["auto", "n", "m"] = "auto",
) -> list[BlockCoord]:
    """Order the grid's blocks per Algorithm 2.

    Parameters
    ----------
    grid:
        The block grid to traverse.
    outer:
        Which dimension the outer loop sweeps. ``"auto"`` (the paper's
        rule) picks N when ``N >= M`` — reusing the larger B surface more
        frequently — and M otherwise.

    Returns
    -------
    list[BlockCoord]
        Every block exactly once, consecutive blocks always sharing a
        surface (partial C within a run, B at m-turns, A at n-turns — or
        the A/B mirror image when the outer loop is M).
    """
    if outer == "auto":
        outer = "n" if grid.space.n >= grid.space.m else "m"

    order: list[BlockCoord] = []
    if outer == "n":
        for ni in _swept(grid.nb, True):
            for mi in _swept(grid.mb, ni % 2 == 0):
                for ki in _swept(grid.kb, (mi + ni) % 2 == 0):
                    order.append(BlockCoord(mi, ni, ki))
    elif outer == "m":
        for mi in _swept(grid.mb, True):
            for ni in _swept(grid.nb, mi % 2 == 0):
                for ki in _swept(grid.kb, (mi + ni) % 2 == 0):
                    order.append(BlockCoord(mi, ni, ki))
    else:
        raise ValueError(f"outer must be 'auto', 'n' or 'm', got {outer!r}")
    return order


def kfirst_runs(
    grid: BlockGrid, *, outer: Literal["auto", "n", "m"] = "auto"
) -> Iterator[list[BlockCoord]]:
    """The schedule grouped into complete reduction runs.

    Each yielded list is one K-run: the ``grid.kb`` blocks that accumulate
    a single C block to completion. Executors use this to know when a
    partial-result surface is finished and may be written back to DRAM.
    """
    order = kfirst_schedule(grid, outer=outer)
    for start in range(0, len(order), grid.kb):
        yield order[start : start + grid.kb]
