#!/usr/bin/env python3
"""A CNN training step where every heavy op is a CAKE GEMM.

The paper motivates CAKE with DNN inference (one GEMM per conv layer);
training doubles down: the backward pass is *two more* GEMMs per layer
(weight gradient and input gradient), both in the skewed-shape regime of
Figure 8. This example runs one full forward/backward/update step of a
small conv layer stack, with every GEMM executed by the CAKE engine and
all gradients verified against the direct (einsum) formulation.

Run:  python examples/cnn_training_step.py
"""

import numpy as np

from repro.dnn import (
    conv2d_input_gradient,
    conv2d_via_gemm,
    conv2d_weight_gradient,
    im2col,
)
from repro.gemm import CakeGemm
from repro.machines import intel_i9_10900k


def direct_conv(x, w, stride=1, padding=0):
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    c_out, c_in, r, s = w.shape
    windows = np.lib.stride_tricks.sliding_window_view(x, (c_in, r, s))[0]
    windows = windows[::stride, ::stride]
    return np.einsum("hwcrs,ocrs->ohw", windows, w)


def main() -> None:
    machine = intel_i9_10900k()
    engine = CakeGemm(machine)
    rng = np.random.default_rng(17)

    layers = [
        dict(w=rng.standard_normal((16, 3, 3, 3)) * 0.2, padding=1),
        dict(w=rng.standard_normal((32, 16, 3, 3)) * 0.1, padding=1),
    ]
    x0 = rng.standard_normal((3, 24, 24))
    target = rng.standard_normal((32, 24, 24))
    lr = 1e-3

    print(f"training step on {machine.name}; all GEMMs via CAKE\n")
    print(f"{'op':24s}{'GEMM M x N x K':>20s}{'GFLOP/s':>9s}{'DRAM MB':>9s}")

    # -- forward --------------------------------------------------------
    activations = [x0]
    gemm_seconds = 0.0
    for i, layer in enumerate(layers):
        res = conv2d_via_gemm(
            activations[-1], layer["w"], padding=layer["padding"], engine=engine
        )
        np.testing.assert_allclose(
            res.y,
            direct_conv(activations[-1], layer["w"], padding=layer["padding"]),
            rtol=1e-8,
        )
        gemm_seconds += res.run.seconds
        m, k = res.run.space.m, res.run.space.k
        print(f"forward conv{i + 1:<18d}{f'{m} x {res.run.space.n} x {k}':>20s}"
              f"{res.run.gflops:9.0f}{res.run.dram_bytes / 1e6:9.1f}")
        activations.append(np.maximum(res.y, 0.0))  # ReLU

    # -- loss and backward ------------------------------------------------
    diff = activations[-1] - target
    loss = 0.5 * float(np.sum(diff * diff))
    grad = diff * (activations[-1] > 0)

    updates = []
    for i in reversed(range(len(layers))):
        layer = layers[i]
        x_in = activations[i]
        dw = conv2d_weight_gradient(
            x_in, grad, layer["w"].shape[2:], padding=layer["padding"],
            engine=engine,
        )
        # verify dW against the einsum formulation
        cols = im2col(x_in, 3, 3, 1, layer["padding"])
        expected_dw = (grad.reshape(grad.shape[0], -1) @ cols.T).reshape(
            layer["w"].shape
        )
        np.testing.assert_allclose(dw.y, expected_dw, rtol=1e-8)
        gemm_seconds += dw.run.seconds
        sp = dw.run.space
        print(f"backward dW conv{i + 1:<14d}{f'{sp.m} x {sp.n} x {sp.k}':>20s}"
              f"{dw.run.gflops:9.0f}{dw.run.dram_bytes / 1e6:9.1f}")

        if i > 0:
            dx = conv2d_input_gradient(
                layer["w"], grad, x_in.shape, padding=layer["padding"],
                engine=engine,
            )
            gemm_seconds += dx.run.seconds
            sp = dx.run.space
            print(f"backward dX conv{i + 1:<14d}{f'{sp.m} x {sp.n} x {sp.k}':>20s}"
                  f"{dx.run.gflops:9.0f}{dx.run.dram_bytes / 1e6:9.1f}")
            grad = dx.y * (x_in > 0)  # through the previous ReLU
        updates.append((i, dw.y))

    # -- SGD update and a sanity re-evaluation -----------------------------
    for i, dw in updates:
        layers[i]["w"] -= lr * dw
    x = x0
    for layer in layers:
        x = np.maximum(direct_conv(x, layer["w"], padding=layer["padding"]), 0.0)
    new_loss = 0.5 * float(np.sum((x - target) ** 2))

    print(f"\nloss {loss:.2f} -> {new_loss:.2f} after one SGD step "
          f"(must decrease: {'yes' if new_loss < loss else 'NO'})")
    print(f"modelled GEMM time for the whole step: {gemm_seconds * 1e3:.2f} ms")
    assert new_loss < loss


if __name__ == "__main__":
    main()
