#!/usr/bin/env python3
"""Quickstart: multiply two matrices with CAKE on a modelled CPU.

Demonstrates the one-call API, verifies the numerics, and prints the
performance report CAKE is about: throughput achieved and — the paper's
point — how little DRAM bandwidth it needed compared to the GOTO
baseline (the algorithm inside MKL / ARM Performance Libraries /
OpenBLAS).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import cake_matmul, goto_matmul
from repro.machines import intel_i9_10900k


def main() -> None:
    rng = np.random.default_rng(0)
    m, k, n = 1920, 1920, 1920
    a = rng.standard_normal((m, k), dtype=np.float32)
    b = rng.standard_normal((k, n), dtype=np.float32)

    machine = intel_i9_10900k()
    print(f"machine : {machine.name} ({machine.cores} cores, "
          f"{machine.dram_gb_per_s:.0f} GB/s DRAM)")
    print(f"problem : C[{m}x{n}] = A[{m}x{k}] @ B[{k}x{n}]  (float32)\n")

    cake = cake_matmul(a, b, machine=machine)
    goto = goto_matmul(a, b, machine=machine)

    # The engines really computed the product, tile by tile:
    np.testing.assert_allclose(cake.c, a @ b, rtol=2e-2, atol=1e-2)
    np.testing.assert_allclose(goto.c, a @ b, rtol=2e-2, atol=1e-2)
    print("numerics: both engines match A @ B\n")

    print(f"{'':14s}{'GFLOP/s':>10s}{'DRAM GB/s':>12s}{'arith int':>12s}")
    for run in (cake, goto):
        print(
            f"{run.engine:14s}{run.gflops:10.1f}{run.dram_gb_per_s:12.2f}"
            f"{run.arithmetic_intensity:12.1f}"
        )

    saving = goto.dram_bytes / cake.dram_bytes
    print(f"\nCAKE moved {saving:.1f}x less DRAM data for the same result.")
    print(f"CAKE plan: alpha={cake.plan_summary['alpha']:.2f}, "
          f"mc=kc={cake.plan_summary['mc']:.0f}, "
          f"CB block {cake.plan_summary['m_block']:.0f} x "
          f"{cake.plan_summary['n_block']:.0f} x {cake.plan_summary['kc']:.0f}"
          f" — derived analytically, no tuning search.")


if __name__ == "__main__":
    main()
