#!/usr/bin/env python3
"""Inside the cake: block schedules and the packet-level simulator.

Walks the machinery the paper builds up in Sections 2, 3 and 6.2:

1. partitions an MM computation space into CB blocks and compares the
   external IO of the K-first schedule (Algorithm 2) against the naive
   and M/N-first alternatives, reproducing the Section 2.2 argument;
2. executes the same schedule on the packet-based architecture
   simulator — source-routed tile packets, a core grid with column
   broadcast and accumulation chains — verifying numerics and showing
   how measured cycles cross from compute-bound to IO-bound exactly at
   the Equation 2 bandwidth floor.

Run:  python examples/schedule_explorer.py
"""

import numpy as np

from repro.archsim import CakeSystem
from repro.core import CBBlock, external_bandwidth_min
from repro.schedule import (
    BlockGrid,
    ComputationSpace,
    SCHEDULE_BUILDERS,
    analyze_reuse,
)


def explore_schedules() -> None:
    space = ComputationSpace(96, 96, 96)
    grid = BlockGrid(space, CBBlock(16, 16, 8))
    print(f"computation space {space.m}x{space.n}x{space.k}, "
          f"blocks {grid.nominal.m}x{grid.nominal.n}x{grid.nominal.k} "
          f"-> {grid.mb}x{grid.nb}x{grid.kb} grid\n")

    print(f"{'schedule':>10s}{'A in':>9s}{'B in':>9s}{'C spill':>9s}"
          f"{'C refetch':>11s}{'total IO':>10s}{'vs k-first':>12s}")
    base = None
    for name in ("k-first", "naive", "m-first", "n-first"):
        io = analyze_reuse(grid, SCHEDULE_BUILDERS[name](grid))
        if base is None:
            base = io.io_total
        print(f"{name:>10s}{io.io_a:9d}{io.io_b:9d}{io.io_c_spill:9d}"
              f"{io.io_c_refetch:11d}{io.io_total:10d}"
              f"{io.io_total / base:11.3f}x")
    print("\nK-first wins: partial results never round-trip through DRAM,"
          "\nand every boustrophedon turn keeps an input surface resident.\n")


def run_packet_simulator() -> None:
    rows = cols = 4
    n_block = 4
    size = 16
    rng = np.random.default_rng(11)
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))

    # Eq. 2: BW_min = (alpha+1)/alpha * k tiles/cycle, alpha = n_block/rows.
    alpha = n_block / rows
    bw_floor = external_bandwidth_min(cols, max(alpha, 1.0))
    print(f"{rows}x{cols} core grid, CB blocks {rows}x{n_block}x{cols} tiles; "
          f"Eq. 2 bandwidth floor = {bw_floor:.1f} tiles/cycle\n")

    print(f"{'ext BW':>8s}{'cycles':>9s}{'vs floor BW':>13s}{'regime':>10s}")
    floor_cycles = None
    for bw in (1.0, 2.0, 4.0, bw_floor, 2 * bw_floor, 8 * bw_floor):
        system = CakeSystem(
            rows, cols, ext_bw_tiles_per_cycle=bw, n_block=n_block
        )
        report = system.run_matmul(a, b)
        np.testing.assert_allclose(report.c, a @ b, rtol=1e-10)
        if abs(bw - bw_floor) < 1e-9:
            floor_cycles = report.total_cycles
        compute = size ** 3 / (rows * cols)
        regime = "compute" if report.total_cycles < 1.25 * compute else "IO"
        rel = "" if floor_cycles is None else f"{report.total_cycles / floor_cycles:10.2f}x"
        print(f"{bw:8.1f}{report.total_cycles:9.0f}{rel:>13s}{regime:>10s}")

    print("\npast the Eq. 2 floor, extra external bandwidth buys almost"
          "\nnothing — the block shape already balanced IO with compute."
          "\n(numerics verified against A @ B at every bandwidth)")


def main() -> None:
    explore_schedules()
    run_packet_simulator()


if __name__ == "__main__":
    main()
