#!/usr/bin/env python3
"""DNN inference: one GEMM per convolutional layer (the paper's intro).

Runs the forward pass of a small CNN by lowering each convolution to a
matrix multiplication (im2col) and executing it with the CAKE engine,
then compares against the GOTO baseline. Conv-layer GEMMs are skewed —
short M (=C_out), wide N (=H*W) — exactly the regime of Figure 8 where
CAKE's analytic shaping pays off, and where packing overhead matters
(Section 5.2.1).

Run:  python examples/dnn_inference.py
"""

import numpy as np

from repro.dnn import conv2d_via_gemm, tiny_cnn_layers
from repro.gemm import CakeGemm, GotoGemm
from repro.machines import intel_i9_10900k


def reference_conv(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Direct convolution via einsum, for validation."""
    c_out, c_in, r, s = w.shape
    _, h, wd = x.shape
    h_out, w_out = h - r + 1, wd - s + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (c_in, r, s))[0]
    return np.einsum("hwcrs,ocrs->ohw", windows[:h_out, :w_out], w)


def main() -> None:
    machine = intel_i9_10900k()
    cake = CakeGemm(machine)
    goto = GotoGemm(machine)
    rng = np.random.default_rng(7)

    print(f"CNN forward pass on {machine.name} — one GEMM per conv layer\n")
    print(f"{'layer':8s}{'GEMM M x N x K':>20s}{'CAKE GF':>9s}{'GOTO GF':>9s}"
          f"{'CAKE/GOTO':>11s}{'DRAM saving':>13s}")

    x = rng.standard_normal((3, 32, 32))
    total_cake_s = total_goto_s = 0.0
    for layer in tiny_cnn_layers():
        w = rng.standard_normal((layer.c_out, layer.c_in, layer.r, layer.s))
        w *= np.sqrt(2.0 / w[0].size)  # He init, keeps activations sane

        result = conv2d_via_gemm(x, w, engine=cake)
        np.testing.assert_allclose(result.y, reference_conv(x, w), rtol=1e-8)
        baseline = conv2d_via_gemm(x, w, engine=goto)

        m, n, k = layer.gemm_shape()
        ratio = result.run.gflops / baseline.run.gflops
        saving = baseline.run.dram_bytes / result.run.dram_bytes
        total_cake_s += result.run.seconds
        total_goto_s += baseline.run.seconds
        print(f"{layer.name:8s}{f'{m} x {n} x {k}':>20s}"
              f"{result.run.gflops:9.0f}{baseline.run.gflops:9.0f}"
              f"{ratio:10.2f}x{saving:12.1f}x")

        x = np.maximum(result.y, 0.0)  # ReLU, feed forward
        if layer.name in ("conv2", "conv3"):
            x = x[:, ::2, ::2]  # crude 2x pool to the next stage's size

    print(f"\nwhole forward pass (modelled): CAKE {total_cake_s * 1e3:.2f} ms, "
          f"GOTO {total_goto_s * 1e3:.2f} ms "
          f"({total_goto_s / total_cake_s:.2f}x)")
    print("every layer's output was verified against a direct convolution")


if __name__ == "__main__":
    main()
