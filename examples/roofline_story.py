#!/usr/bin/env python3
"""The memory wall on a roofline chart, in text.

Draws each platform's roofline (compute roof + bandwidth diagonal) as an
ASCII sketch and places the CAKE and GOTO operating points on it. The
story in one picture: CB blocks push the kernel's arithmetic intensity
rightward — past the ridge, out of the bandwidth-bound region — while
GOTO's partial-C streaming pins it left of the ridge exactly on the
machines where bandwidth is scarce.

Run:  python examples/roofline_story.py
"""

import numpy as np

from repro.analysis import classify_point, operating_point, roofline_curve
from repro.gemm import CakeGemm, GotoGemm
from repro.machines import arm_cortex_a53, intel_i9_10900k, nvm_machine


def sketch(curve, points, width=58, height=12):
    """Log-log ASCII roofline with labelled operating points."""
    ai_lo, ai_hi = curve.intensities[0], curve.intensities[-1]
    gf_hi = curve.peak_gflops * 1.6
    gf_lo = min(curve.attainable_gflops[0], *(p.gflops for p in points)) / 2

    def col(ai):
        return int(np.clip(np.log(ai / ai_lo) / np.log(ai_hi / ai_lo), 0, 1) * (width - 1))

    def row(gf):
        frac = np.log(gf / gf_lo) / np.log(gf_hi / gf_lo)
        return (height - 1) - int(np.clip(frac, 0, 1) * (height - 1))

    canvas = [[" "] * width for _ in range(height)]
    for ai, gf in zip(curve.intensities, curve.attainable_gflops):
        canvas[row(gf)][col(ai)] = "."
    for mark, p in zip("CG", points):
        canvas[row(p.gflops)][col(p.arithmetic_intensity)] = mark
    lines = ["".join(r) for r in canvas]
    lines.append("-" * width)
    lines.append(
        f"AI {ai_lo:g} ... {ai_hi:g} FLOP/byte   "
        f"(ridge at {curve.ridge_intensity:.0f})"
    )
    return "\n".join(lines)


def main() -> None:
    n_by_machine = {
        "Intel i9-10900K": 4608,
        "ARM v8 Cortex-A53": 1536,
        "NVM main-memory system": 4608,
    }
    for machine in (intel_i9_10900k(), arm_cortex_a53(), nvm_machine()):
        n = n_by_machine[machine.name]
        curve = roofline_curve(machine)
        cake = operating_point(CakeGemm(machine).analyze(n, n, n), "C")
        goto = operating_point(GotoGemm(machine).analyze(n, n, n), "G")
        print(f"== {machine.name} ({n}^2 MM) ==")
        print(sketch(curve, [cake, goto]))
        for label, p in (("CAKE (C)", cake), ("GOTO (G)", goto)):
            print(
                f"  {label}: AI {p.arithmetic_intensity:7.1f} FLOP/byte, "
                f"{p.gflops:7.1f} GFLOP/s -> {classify_point(curve, p)}"
            )
        print()


if __name__ == "__main__":
    main()
