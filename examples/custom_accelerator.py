#!/usr/bin/env python3
"""Designing an accelerator's memory system with the CB framework.

Section 1 promises that "under the CB framework, we can precisely
characterize the required size and bandwidth of local memory for
achieving a target computation throughput with a given external memory
bandwidth", and Section 6.1 points the methodology beyond CPUs. This
example plays accelerator architect:

1. fix one DRAM interface and ask for 1x, 2x, 4x, ... the compute —
   the provisioning table says exactly how much SRAM and on-chip
   bandwidth each step costs (Eqs. 1-3);
2. pick one design point and *validate it in the packet-level
   simulator*: the provisioned machine hits its target utilisation, and
   a 30%-underprovisioned external link visibly starves it.

Run:  python examples/custom_accelerator.py
"""

import numpy as np

from repro.archsim import CakeSystem
from repro.core import provision, scaling_table


def provisioning_study() -> None:
    k = 4  # core-grid depth: 4 columns of cores, blocks 4 deep
    ext_bw = 6.0  # tiles/cycle the package's DRAM interface can stream

    print(f"DRAM interface fixed at {ext_bw} tiles/cycle (R = {ext_bw / k:.2f})")
    print("target compute -> what the memory system must provide (Eqs. 1-3):\n")
    print(f"{'cores':>6s}{'alpha':>7s}{'block (m x n x k)':>19s}"
          f"{'local mem (tiles)':>19s}{'internal BW':>13s}{'ext BW':>8s}")
    rows = scaling_table(
        k=k, external_bw_tiles_per_cycle=ext_bw, p_values=(1, 2, 4, 8, 16)
    )
    for r in rows:
        b = r.block
        print(f"{r.p * r.k:6d}{r.alpha:7.2f}"
              f"{f'{b.m} x {b.n} x {b.k}':>19s}"
              f"{r.local_memory_tiles:19.0f}"
              f"{r.internal_bw_tiles_per_cycle:13.1f}"
              f"{r.external_bw_tiles_per_cycle:8.1f}")
    print("\n16x the compute at the same DRAM pins costs ~"
          f"{rows[-1].local_memory_tiles / rows[0].local_memory_tiles:.0f}x "
          "the SRAM and "
          f"{rows[-1].internal_bw_tiles_per_cycle / rows[0].internal_bw_tiles_per_cycle:.1f}x "
          "the on-chip bandwidth — external bandwidth unchanged.\n")


def validate_in_simulator() -> None:
    # Take the p=2, k=4 design point: an 8x4 grid... p*k = 8 cores tall.
    rows, cols = 8, 4
    design = provision(p=2, k=4, external_bw_tiles_per_cycle=6.0)
    n_block = design.block.n

    rng = np.random.default_rng(5)
    size = 32
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))

    print(f"validating the p=2 design in the packet simulator "
          f"({rows}x{cols} grid, n_block={n_block}):")
    print(f"{'ext BW (tiles/cyc)':>20s}{'cycles':>9s}{'vs provisioned':>16s}")
    provisioned_cycles = None
    for label, bw in (
        ("provisioned", design.external_bw_tiles_per_cycle),
        ("-30% starved", design.external_bw_tiles_per_cycle * 0.7),
        ("2x overbuilt", design.external_bw_tiles_per_cycle * 2.0),
    ):
        system = CakeSystem(
            rows, cols, ext_bw_tiles_per_cycle=bw, n_block=n_block
        )
        report = system.run_matmul(a, b)
        np.testing.assert_allclose(report.c, a @ b, rtol=1e-10)
        if provisioned_cycles is None:
            provisioned_cycles = report.total_cycles
        rel = report.total_cycles / provisioned_cycles
        print(f"{label:>20s}{report.total_cycles:9.0f}{rel:15.2f}x")

    print("\nthe Eq. 2 operating point is tight: less bandwidth stalls the"
          "\ngrid, more bandwidth buys nearly nothing. (numerics verified)")


def main() -> None:
    provisioning_study()
    validate_in_simulator()


if __name__ == "__main__":
    main()
