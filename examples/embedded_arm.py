#!/usr/bin/env python3
"""The memory-wall story: GEMM on a bandwidth-starved embedded CPU.

Replays Section 5.2.4 on the modelled ARM Cortex-A53 (4 cores, one
2 GB/s LPDDR channel): the GOTO baseline (= ARM Performance Libraries)
stops scaling once its DRAM demand hits the wall around 2 cores, while
CAKE holds external bandwidth constant and keeps scaling — then shows
what the Section 3.2 alpha rule does when DRAM gets even scarcer.

Run:  python examples/embedded_arm.py
"""

import dataclasses

import numpy as np

from repro.gemm import CakeGemm, GotoGemm
from repro.machines import arm_cortex_a53
from repro.perfmodel import cake_optimal_dram_gb_per_s, predict_cake, predict_goto


def main() -> None:
    machine = arm_cortex_a53()
    n = 3000  # the paper's ARM problem size
    print(f"{machine.name}: {machine.cores} cores, "
          f"{machine.dram_gb_per_s:.0f} GB/s DRAM, "
          f"{machine.llc_bytes // 1024} KiB shared L2 (no L3)\n")

    # -- numerics on a small slice first: these engines really multiply --
    rng = np.random.default_rng(1)
    a = rng.standard_normal((240, 200))
    b = rng.standard_normal((200, 280))
    run = CakeGemm(machine).multiply(a, b)
    np.testing.assert_allclose(run.c, a @ b, rtol=1e-9)
    print("numerics verified on a 240x280 sample\n")

    # -- the Figure 11 sweep, analytically, at full problem size --
    print(f"{n}x{n} MM, sweeping cores "
          f"(GOTO = ARM Performance Libraries baseline):")
    print(f"{'cores':>6s}{'CAKE GF':>9s}{'ARMPL GF':>10s}"
          f"{'CAKE DRAM':>11s}{'ARMPL DRAM':>12s}{'optimal':>9s}")
    for cores in range(1, machine.cores + 1):
        c = predict_cake(machine, n, n, n, cores=cores)
        g = predict_goto(machine, n, n, n, cores=cores)
        opt = cake_optimal_dram_gb_per_s(machine.with_cores(cores), m=n, n=n, k=n)
        print(f"{cores:6d}{c.gflops:9.2f}{g.gflops:10.2f}"
              f"{c.dram_gb_per_s:10.2f} {g.dram_gb_per_s:11.2f} {opt:8.2f}")

    c4 = predict_cake(machine, n, n, n)
    g4 = predict_goto(machine, n, n, n)
    print(f"\nat 4 cores CAKE delivers {c4.gflops / g4.gflops:.2f}x ARMPL's "
          f"throughput using {g4.dram_gb_per_s / c4.dram_gb_per_s:.1f}x less "
          "DRAM bandwidth")

    # -- what if DRAM were even slower? alpha adapts (Section 3.2) --
    # Alpha trades LOCAL MEMORY for external bandwidth, so it needs local
    # memory to trade: on the A53's 512 KiB L2 the LRU rule shrinks mc as
    # fast as alpha widens the block, and alpha=1 stays best. Give a
    # hypothetical next-gen part a 4 MiB on-chip SRAM and the Section 3.2
    # rule starts stretching blocks as the DRAM channel gets slower:
    bigger = dataclasses.replace(machine, llc_bytes=4 * 1024 * 1024)
    print("\nthrottling DRAM on an A53 variant with 4 MiB on-chip SRAM:")
    print(f"{'DRAM GB/s':>10s}{'alpha':>7s}{'mc':>5s}{'CAKE GF':>9s}{'ARMPL GF':>10s}")
    for dram in (2.0, 1.0, 0.5, 0.25):
        throttled = dataclasses.replace(bigger, dram_gb_per_s=dram)
        c = predict_cake(throttled, n, n, n)
        g = predict_goto(throttled, n, n, n)
        print(f"{dram:10.2f}{c.plan_summary['alpha']:7.2f}"
              f"{c.plan_summary['mc']:5.0f}{c.gflops:9.2f}{g.gflops:10.2f}")


if __name__ == "__main__":
    main()
